#include "core/dynamic_engine.h"

#include <algorithm>
#include <cstdio>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/tracing.h"

namespace cohere {

Result<DynamicReducedIndex> DynamicReducedIndex::Build(
    const Dataset& dataset, const DynamicEngineOptions& options) {
  if (dataset.NumRecords() == 0) {
    return Status::InvalidArgument("cannot build on an empty dataset");
  }
  if (options.drift_threshold < 1.0) {
    return Status::InvalidArgument("drift_threshold must be >= 1");
  }
  if (options.drift_window == 0) {
    return Status::InvalidArgument("drift_window must be positive");
  }

  obs::TraceSpan trace("dynamic_index.build");

  DynamicReducedIndex index;
  index.options_ = options;
  index.metric_ = MakeMetric(options.metric, options.metric_p);
  index.dims_ = dataset.NumAttributes();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  index.query_metrics_ = &obs::QueryPathMetricsFor("dynamic_index");
  index.inserts_ = registry.GetCounter("dynamic_index.inserts");
  index.refits_ = registry.GetCounter("dynamic_index.refits");
  index.refit_failures_ = registry.GetCounter("dynamic_index.refit_failures");
  index.deadline_exceeded_ = registry.GetCounter("queries.deadline_exceeded");
  index.drift_gauge_ = registry.GetGauge("dynamic_index.drift_ratio");

  Result<ReductionPipeline> pipeline =
      ReductionPipeline::Fit(dataset, options.reduction);
  if (!pipeline.ok()) return pipeline.status();
  index.pipeline_ = std::move(*pipeline);

  const size_t n = dataset.NumRecords();
  index.fitted_records_ = n;
  index.originals_.assign(dataset.features().data(),
                          dataset.features().data() + n * index.dims_);
  if (dataset.HasLabels()) {
    index.labels_ = dataset.labels();
  } else {
    index.labels_.assign(n, kNoLabel);
  }
  index.ReprojectAll();

  double error_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    error_sum += index.ReconstructionErrorSq(dataset.Record(i));
  }
  index.baseline_error_ = error_sum / static_cast<double>(n);
  return index;
}

double DynamicReducedIndex::ReconstructionErrorSq(
    const Vector& record) const {
  const PcaModel& model = pipeline_.model();
  const Vector normalized = model.Normalize(record);
  // Energy identity: |normalized|^2 = |full coords|^2, so the error of
  // keeping only the retained components is |normalized|^2 - |kept|^2.
  const Vector kept = model.Project(record, pipeline_.components());
  const double err = normalized.SquaredNorm2() - kept.SquaredNorm2();
  return std::max(err, 0.0);
}

void DynamicReducedIndex::ReprojectAll() {
  const size_t n = labels_.size();
  const size_t reduced_dims = pipeline_.ReducedDims();
  reduced_.assign(n * reduced_dims, 0.0);
  Vector record(dims_);
  for (size_t i = 0; i < n; ++i) {
    std::copy(originals_.begin() + static_cast<ptrdiff_t>(i * dims_),
              originals_.begin() + static_cast<ptrdiff_t>((i + 1) * dims_),
              record.data());
    const Vector projected = pipeline_.TransformPoint(record);
    std::copy(projected.data(), projected.data() + reduced_dims,
              reduced_.begin() + static_cast<ptrdiff_t>(i * reduced_dims));
  }
}

Status DynamicReducedIndex::Insert(const Vector& record, int label) {
  if (record.size() != dims_) {
    return Status::InvalidArgument("record dimensionality mismatch");
  }
  originals_.insert(originals_.end(), record.data(),
                    record.data() + dims_);
  labels_.push_back(label);
  const Vector projected = pipeline_.TransformPoint(record);
  reduced_.insert(reduced_.end(), projected.data(),
                  projected.data() + projected.size());

  recent_errors_.push_back(ReconstructionErrorSq(record));
  while (recent_errors_.size() > options_.drift_window) {
    recent_errors_.pop_front();
  }
  if (backoff_remaining_inserts_ > 0) --backoff_remaining_inserts_;
  if (obs::MetricsRegistry::Enabled()) {
    inserts_->Increment();
    drift_gauge_->Set(DriftRatio());
  }
  return Status::Ok();
}

std::vector<Neighbor> DynamicReducedIndex::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats) const {
  return Query(original_space_query, k, skip_index, stats, QueryLimits{});
}

std::vector<Neighbor> DynamicReducedIndex::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats, const QueryLimits& limits) const {
  COHERE_CHECK_EQ(original_space_query.size(), dims_);
  obs::TraceSpan span("dynamic_index.query");
  span.AddArg("k", static_cast<double>(k));
  const bool instrumented = obs::MetricsRegistry::Enabled();
  Stopwatch watch;
  const Vector query = pipeline_.TransformPoint(original_space_query);
  const size_t reduced_dims = pipeline_.ReducedDims();
  const size_t n = labels_.size();

  QueryControl control = QueryControl::FromLimits(limits);
  QueryControl* control_ptr = limits.active() ? &control : nullptr;

  QueryStats local;
  KnnCollector collector(k);
  Vector row(reduced_dims);
  for (size_t i = 0; i < n; ++i) {
    if (i == skip_index) continue;
    if (control_ptr != nullptr && control_ptr->ShouldStop()) break;
    std::copy(
        reduced_.begin() + static_cast<ptrdiff_t>(i * reduced_dims),
        reduced_.begin() + static_cast<ptrdiff_t>((i + 1) * reduced_dims),
        row.data());
    const double comparable = metric_->ComparableDistance(query, row);
    ++local.distance_evaluations;
    collector.Offer(i, comparable);
  }
  if (control_ptr != nullptr && control_ptr->stopped()) {
    local.truncated = true;
  }
  std::vector<Neighbor> out = collector.Take();
  for (Neighbor& nb : out) {
    nb.distance = metric_->ComparableToActual(nb.distance);
  }
  if (instrumented) {
    query_metrics_->Record(local.distance_evaluations, local.nodes_visited,
                           local.candidates_refined, watch.ElapsedMicros());
    if (control_ptr != nullptr && control_ptr->deadline_exceeded()) {
      deadline_exceeded_->Increment();
    }
  }
  if (local.truncated) span.AddArg("truncated", 1.0);
  if (stats != nullptr) stats->MergeFrom(local);
  return out;
}

int DynamicReducedIndex::label(size_t i) const {
  COHERE_CHECK_LT(i, labels_.size());
  return labels_[i];
}

double DynamicReducedIndex::RecentReconstructionError() const {
  if (recent_errors_.empty()) return baseline_error_;
  double sum = 0.0;
  for (double e : recent_errors_) sum += e;
  return sum / static_cast<double>(recent_errors_.size());
}

double DynamicReducedIndex::DriftRatio() const {
  if (baseline_error_ <= 0.0) {
    return RecentReconstructionError() > 0.0 ? options_.drift_threshold + 1.0
                                             : 1.0;
  }
  return RecentReconstructionError() / baseline_error_;
}

bool DynamicReducedIndex::NeedsRefit() const {
  if (backoff_remaining_inserts_ > 0) return false;
  if (recent_errors_.size() * 4 < options_.drift_window) return false;
  return DriftRatio() > options_.drift_threshold;
}

Status DynamicReducedIndex::Refit() {
  obs::TraceSpan trace("dynamic_index.refit");
  obs::ScopedTimer timer(
      obs::MetricsRegistry::Enabled()
          ? obs::MetricsRegistry::Global().GetHistogram(
                "dynamic_index.refit_latency_us")
          : nullptr);
  const size_t n = labels_.size();
  Matrix features(n, dims_);
  std::copy(originals_.begin(), originals_.end(), features.data());
  Dataset dataset(std::move(features));
  // Labels may be partially kNoLabel; the reduction does not need them.

  // Build the replacement pipeline aside; nothing the index serves from is
  // touched until the fit has succeeded, so a failed refit leaves the old
  // projection answering queries exactly as before.
  Result<ReductionPipeline> pipeline = [&]() -> Result<ReductionPipeline> {
    if (COHERE_INJECT_FAULT(fault::kPointDynamicRefit)) {
      return Status::NumericalError(
          "injected fault: " + std::string(fault::kPointDynamicRefit));
    }
    return ReductionPipeline::Fit(dataset, options_.reduction);
  }();
  if (!pipeline.ok()) {
    ++consecutive_refit_failures_;
    backoff_remaining_inserts_ =
        std::min(kRefitBackoffCapInserts,
                 kRefitBackoffBaseInserts << std::min<size_t>(
                     consecutive_refit_failures_ - 1, size_t{16}));
    if (obs::MetricsRegistry::Enabled()) refit_failures_->Increment();
    COHERE_LOG(Warning) << "DynamicReducedIndex::Refit failed ("
                        << pipeline.status().ToString()
                        << "); keeping the previous projection and backing "
                           "off for " << backoff_remaining_inserts_
                        << " inserts";
    return pipeline.status();
  }
  pipeline_ = std::move(*pipeline);
  fitted_records_ = n;
  consecutive_refit_failures_ = 0;
  backoff_remaining_inserts_ = 0;
  ReprojectAll();

  double error_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    error_sum += ReconstructionErrorSq(dataset.Record(i));
  }
  baseline_error_ = error_sum / static_cast<double>(n);
  recent_errors_.clear();
  if (obs::MetricsRegistry::Enabled()) refits_->Increment();
  return Status::Ok();
}

std::string DynamicReducedIndex::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "DynamicReducedIndex: n=%zu (fitted on %zu) dims=%zu->%zu "
                "drift=%.2f%s",
                size(), fitted_records_, dims_, pipeline_.ReducedDims(),
                DriftRatio(), NeedsRefit() ? " REFIT" : "");
  return buf;
}

}  // namespace cohere
