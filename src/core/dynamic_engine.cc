#include "core/dynamic_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "index/linear_scan.h"
#include "obs/tracing.h"

namespace cohere {

Result<DynamicReducedIndex> DynamicReducedIndex::Build(
    const Dataset& dataset, const DynamicEngineOptions& options) {
  if (dataset.NumRecords() == 0) {
    return Status::InvalidArgument("cannot build on an empty dataset");
  }
  if (options.drift_threshold < 1.0) {
    return Status::InvalidArgument("drift_threshold must be >= 1");
  }
  if (options.drift_window == 0) {
    return Status::InvalidArgument("drift_window must be positive");
  }

  obs::TraceSpan trace("dynamic_index.build");

  DynamicReducedIndex index;
  index.options_ = options;
  index.dims_ = dataset.NumAttributes();
  index.writer_ = std::make_unique<WriterState>(options.insert_retry);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  index.inserts_ = registry.GetCounter("dynamic_index.inserts");
  index.refits_ = registry.GetCounter("dynamic_index.refits");
  index.refit_failures_ = registry.GetCounter("dynamic_index.refit_failures");
  index.drift_gauge_ = registry.GetGauge("dynamic_index.drift_ratio");
  index.insert_backoff_gauge_ =
      registry.GetGauge("dynamic_index.insert_backoff");

  Result<ReductionPipeline> pipeline =
      ReductionPipeline::Fit(dataset, options.reduction);
  if (!pipeline.ok()) return pipeline.status();

  const size_t n = dataset.NumRecords();
  const size_t reduced_dims = pipeline->ReducedDims();
  Matrix reduced(n, reduced_dims);
  for (size_t i = 0; i < n; ++i) {
    reduced.SetRow(i, pipeline->TransformPoint(dataset.Record(i)));
  }

  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->metric = MakeMetric(options.metric, options.metric_p);
  snapshot->originals = dataset.features();
  if (dataset.HasLabels()) {
    snapshot->labels = dataset.labels();
  } else {
    snapshot->labels.assign(n, kNoLabel);
  }
  SnapshotShard shard;
  shard.pipeline = std::move(*pipeline);
  shard.rows = std::make_shared<const BlockedMatrix>(reduced);
  shard.index =
      std::make_unique<LinearScanIndex>(shard.rows, snapshot->metric.get());
  snapshot->shards.push_back(std::move(shard));

  index.writer_->fitted_records = n;
  double error_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    error_sum += ReconstructionErrorSq(snapshot->shards[0].pipeline,
                                       dataset.Record(i));
  }
  index.writer_->baseline_error = error_sum / static_cast<double>(n);

  ServingCoreOptions serving_options;
  serving_options.scope = "dynamic_index";
  serving_options.default_deadline_us = options.query_deadline_us;
  serving_options.cache_budget_bytes = options.cache_budget_bytes;
  serving_options.explain = options.explain;
  serving_options.admission = options.admission;
  index.serving_ = std::make_unique<ServingCore>(serving_options);
  COHERE_CHECK(index.serving_->Publish(std::move(snapshot)).ok());
  return index;
}

double DynamicReducedIndex::ReconstructionErrorSq(
    const ReductionPipeline& pipeline, const Vector& record) {
  const PcaModel& model = pipeline.model();
  const Vector normalized = model.Normalize(record);
  // Energy identity: |normalized|^2 = |full coords|^2, so the error of
  // keeping only the retained components is |normalized|^2 - |kept|^2.
  const Vector kept = model.Project(record, pipeline.components());
  const double err = normalized.SquaredNorm2() - kept.SquaredNorm2();
  return std::max(err, 0.0);
}

Status DynamicReducedIndex::Insert(const Vector& record, int label) {
  if (record.size() != dims_) {
    return Status::InvalidArgument("record dimensionality mismatch");
  }
  std::lock_guard<std::mutex> lock(writer_->mu);
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  const SnapshotShard& shard = snapshot->shards[0];
  // The shard-owned blocked rows are plain row-major with padding only
  // after the last row, so rows [0, n) are one contiguous run.
  const BlockedMatrix& old_reduced = *shard.rows;
  const size_t n = snapshot->labels.size();
  const size_t reduced_dims = old_reduced.cols();

  // Copy-on-write: build the successor snapshot aside (extended originals,
  // extended reduced rows, fresh index over them) and publish it atomically.
  // In-flight queries keep the old snapshot alive until they finish.
  auto next = std::make_shared<EngineSnapshot>();
  next->metric = snapshot->metric;
  next->labels = snapshot->labels;
  next->labels.push_back(label);
  next->originals = Matrix(n + 1, dims_);
  std::copy(snapshot->originals.data(),
            snapshot->originals.data() + n * dims_, next->originals.data());
  std::copy(record.data(), record.data() + dims_, next->originals.RowPtr(n));
  Matrix reduced(n + 1, reduced_dims);
  std::copy(old_reduced.data(), old_reduced.data() + n * reduced_dims,
            reduced.data());
  const Vector projected = shard.pipeline.TransformPoint(record);
  std::copy(projected.data(), projected.data() + reduced_dims,
            reduced.RowPtr(n));
  SnapshotShard next_shard;
  next_shard.pipeline = shard.pipeline;  // unchanged by inserts
  next_shard.rows = std::make_shared<const BlockedMatrix>(reduced);
  next_shard.index =
      std::make_unique<LinearScanIndex>(next_shard.rows, next->metric.get());
  next->shards.push_back(std::move(next_shard));

  // A failed publish (e.g. an injected `core.snapshot.publish` fault) keeps
  // the built successor aside and retries under the RetryPolicy's attempt
  // and token budgets; a persistent fault still surfaces as an error with
  // the old snapshot serving untouched.
  Status published = serving_->Publish(next);
  for (size_t attempt = 1;
       !published.ok() && writer_->insert_retry.AcquireRetry(attempt);
       ++attempt) {
    const auto pause = std::chrono::microseconds(
        static_cast<int64_t>(writer_->insert_retry.BackoffUs(attempt)));
    std::this_thread::sleep_for(pause);
    published = serving_->Publish(next);
  }
  if (!published.ok()) {
    // The old snapshot is still serving and the record was not inserted;
    // leave the drift monitor untouched.
    return published;
  }

  writer_->recent_errors.push_back(
      ReconstructionErrorSq(shard.pipeline, record));
  while (writer_->recent_errors.size() > options_.drift_window) {
    writer_->recent_errors.pop_front();
  }
  if (writer_->backoff_remaining_inserts > 0) {
    --writer_->backoff_remaining_inserts;
  }
  if (obs::MetricsRegistry::Enabled()) {
    inserts_->Increment();
    drift_gauge_->Set(DriftRatioLocked());
    insert_backoff_gauge_->Set(
        static_cast<double>(writer_->backoff_remaining_inserts));
  }
  return Status::Ok();
}

std::vector<Neighbor> DynamicReducedIndex::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats) const {
  COHERE_CHECK_EQ(original_space_query.size(), dims_);
  return serving_->Query(original_space_query, k, skip_index, stats);
}

std::vector<Neighbor> DynamicReducedIndex::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats, const QueryLimits& limits) const {
  COHERE_CHECK_EQ(original_space_query.size(), dims_);
  return serving_->Query(original_space_query, k, skip_index, stats, limits);
}

std::vector<std::vector<Neighbor>> DynamicReducedIndex::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats) const {
  return serving_->QueryBatch(original_space_queries, k, stats);
}

std::vector<std::vector<Neighbor>> DynamicReducedIndex::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats,
    const QueryLimits& limits) const {
  return serving_->QueryBatch(original_space_queries, k, stats, limits);
}

int DynamicReducedIndex::label(size_t i) const {
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  COHERE_CHECK_LT(i, snapshot->labels.size());
  return snapshot->labels[i];
}

double DynamicReducedIndex::BaselineReconstructionError() const {
  std::lock_guard<std::mutex> lock(writer_->mu);
  return writer_->baseline_error;
}

double DynamicReducedIndex::RecentReconstructionErrorLocked() const {
  if (writer_->recent_errors.empty()) return writer_->baseline_error;
  double sum = 0.0;
  for (double e : writer_->recent_errors) sum += e;
  return sum / static_cast<double>(writer_->recent_errors.size());
}

double DynamicReducedIndex::RecentReconstructionError() const {
  std::lock_guard<std::mutex> lock(writer_->mu);
  return RecentReconstructionErrorLocked();
}

double DynamicReducedIndex::DriftRatioLocked() const {
  if (writer_->baseline_error <= 0.0) {
    return RecentReconstructionErrorLocked() > 0.0
               ? options_.drift_threshold + 1.0
               : 1.0;
  }
  return RecentReconstructionErrorLocked() / writer_->baseline_error;
}

double DynamicReducedIndex::DriftRatio() const {
  std::lock_guard<std::mutex> lock(writer_->mu);
  return DriftRatioLocked();
}

bool DynamicReducedIndex::NeedsRefit() const {
  std::lock_guard<std::mutex> lock(writer_->mu);
  if (writer_->backoff_remaining_inserts > 0) return false;
  if (writer_->recent_errors.size() * 4 < options_.drift_window) return false;
  return DriftRatioLocked() > options_.drift_threshold;
}

size_t DynamicReducedIndex::RefitBackoffRemaining() const {
  std::lock_guard<std::mutex> lock(writer_->mu);
  return writer_->backoff_remaining_inserts;
}

Status DynamicReducedIndex::Refit() {
  std::lock_guard<std::mutex> lock(writer_->mu);
  obs::TraceSpan trace("dynamic_index.refit");
  obs::ScopedTimer timer(
      obs::MetricsRegistry::Enabled()
          ? obs::MetricsRegistry::Global().GetHistogram(
                "dynamic_index.refit_latency_us")
          : nullptr);
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  const size_t n = snapshot->labels.size();
  Matrix features = snapshot->originals;
  Dataset dataset(std::move(features));
  // Labels may be partially kNoLabel; the reduction does not need them.

  auto fail = [&](const Status& status) {
    ++writer_->consecutive_refit_failures;
    // Same ladder as RetryPolicy backoff sequencing: 8, 16, ... capped at
    // 128 inserts between refit recommendations.
    writer_->backoff_remaining_inserts = RetryPolicy::CappedExponentialSteps(
        kRefitBackoffBaseInserts, kRefitBackoffCapInserts,
        writer_->consecutive_refit_failures);
    if (obs::MetricsRegistry::Enabled()) {
      refit_failures_->Increment();
      insert_backoff_gauge_->Set(
          static_cast<double>(writer_->backoff_remaining_inserts));
    }
    COHERE_LOG(Warning) << "DynamicReducedIndex::Refit failed ("
                        << status.ToString()
                        << "); keeping the previous snapshot and backing "
                           "off for " << writer_->backoff_remaining_inserts
                        << " inserts";
    return status;
  };

  // Build the replacement pipeline aside; nothing the index serves from is
  // touched until the whole successor snapshot has been published, so a
  // failed refit (fit error or publish fault) leaves the old snapshot
  // answering queries exactly as before.
  Result<ReductionPipeline> pipeline = [&]() -> Result<ReductionPipeline> {
    if (COHERE_INJECT_FAULT(fault::kPointDynamicRefit)) {
      return Status::NumericalError(
          "injected fault: " + std::string(fault::kPointDynamicRefit));
    }
    return ReductionPipeline::Fit(dataset, options_.reduction);
  }();
  if (!pipeline.ok()) return fail(pipeline.status());

  const size_t reduced_dims = pipeline->ReducedDims();
  Matrix reduced(n, reduced_dims);
  for (size_t i = 0; i < n; ++i) {
    reduced.SetRow(i, pipeline->TransformPoint(dataset.Record(i)));
  }
  auto next = std::make_shared<EngineSnapshot>();
  next->metric = snapshot->metric;
  next->labels = snapshot->labels;
  next->originals = snapshot->originals;
  SnapshotShard next_shard;
  next_shard.pipeline = std::move(*pipeline);
  next_shard.rows = std::make_shared<const BlockedMatrix>(reduced);
  next_shard.index =
      std::make_unique<LinearScanIndex>(next_shard.rows, next->metric.get());
  next->shards.push_back(std::move(next_shard));

  double error_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    error_sum += ReconstructionErrorSq(next->shards[0].pipeline,
                                       dataset.Record(i));
  }

  Status published = serving_->Publish(std::move(next));
  if (!published.ok()) return fail(published);

  writer_->fitted_records = n;
  writer_->consecutive_refit_failures = 0;
  writer_->backoff_remaining_inserts = 0;
  writer_->baseline_error = error_sum / static_cast<double>(n);
  writer_->recent_errors.clear();
  if (obs::MetricsRegistry::Enabled()) {
    refits_->Increment();
    insert_backoff_gauge_->Set(0.0);
  }
  return Status::Ok();
}

std::string DynamicReducedIndex::Describe() const {
  const std::shared_ptr<const EngineSnapshot> snapshot = serving_->snapshot();
  size_t fitted;
  {
    std::lock_guard<std::mutex> lock(writer_->mu);
    fitted = writer_->fitted_records;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "DynamicReducedIndex: n=%zu (fitted on %zu) dims=%zu->%zu "
                "drift=%.2f%s",
                snapshot->labels.size(), fitted, dims_,
                snapshot->shards[0].pipeline.ReducedDims(), DriftRatio(),
                NeedsRefit() ? " REFIT" : "");
  return buf;
}

}  // namespace cohere
