#ifndef COHERE_CORE_SERVING_H_
#define COHERE_CORE_SERVING_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "common/status.h"
#include "core/admission.h"
#include "core/snapshot.h"
#include "index/knn.h"
#include "obs/query_metrics.h"

namespace cohere {

/// Degradation an admitted query runs under (assembled from an
/// AdmissionGrant). A null plan pointer everywhere below means "no
/// degradation" and keeps the query path byte-identical to the
/// admission-free code.
struct BrownoutPlan {
  size_t level = 0;
  size_t probe_limit = static_cast<size_t>(-1);
  size_t rerank_cap = static_cast<size_t>(-1);
};

/// Static configuration of one ServingCore (fixed at engine build).
struct ServingCoreOptions {
  /// Metric/trace scope prefix: the core records the S.queries /
  /// S.distance_evaluations / S.nodes_visited / S.candidates_refined /
  /// S.query_latency_us bundle plus S.batch_latency_us, and emits S.query /
  /// S.project / S.query_batch / S.project_batch / S.probe spans.
  std::string scope = "engine";
  /// Default wall-clock budget per Query (and per QueryBatch as a whole) in
  /// microseconds; 0 disables. Per-call QueryLimits override it.
  double default_deadline_us = 0.0;
  /// Shards probed per query on multi-shard snapshots, nearest first.
  size_t probe_shards = 1;
  /// When more than one shard is probed, re-rank the merged candidates by
  /// the metric in the shared studentized full space (per-shard concept
  /// spaces are not mutually comparable).
  bool rerank_multi_probe = false;
  /// Byte budget for this core's result cache (requested from the process-
  /// wide cache::CacheManager, which may rebalance it under a global cap).
  /// 0 disables caching entirely: the query path is bit-identical to the
  /// cache-free code. With a budget, repeated queries are answered from
  /// snapshot-version-keyed entries — a COW publish implicitly invalidates
  /// by bumping the version, and stale entries age out via eviction.
  size_t cache_budget_bytes = 0;
  /// Capture a per-query EXPLAIN profile (obs::QueryProfile) for every
  /// serial Query; the most recent one is readable via LastProfile(). Off
  /// by default — the disabled path stays bit-identical to the
  /// profile-free code.
  bool explain = false;
  /// Overload policy (admission control, load shedding, brownout, circuit
  /// breaker); disabled by default, in which case no controller is built
  /// and Query/TryQuery behave identically to the pre-admission code.
  AdmissionOptions admission;
};

/// The query-path substrate shared by all engine facades: one place that
/// owns snapshot publication (RCU handle + version), deadline/cancellation
/// resolution, pooled batch fan-out with batch-wide deadlines and QueryStats
/// merging, scope-prefixed metrics and trace spans, and — on multi-shard
/// snapshots — routed multi-probe scatter-gather with optional full-space
/// re-rank.
///
/// Work accounting is defined here, once, for every engine:
///   - `distance_evaluations` and `candidates_refined` are whatever the
///     probed shard indexes report, plus one `candidates_refined` per
///     merged candidate scored during full-space re-rank;
///   - `nodes_visited` is the shard indexes' count plus one per probed
///     shard (the routing decision).
/// Single-shard snapshots add nothing on top of the index's own counters.
///
/// Thread safety: Query/QueryBatch are safe from any number of threads
/// concurrently with Publish; each call acquires the current snapshot once
/// and never touches mutable engine state afterwards.
class ServingCore {
 public:
  explicit ServingCore(ServingCoreOptions options);
  ServingCore(const ServingCore&) = delete;
  ServingCore& operator=(const ServingCore&) = delete;

  /// Publishes the successor snapshot (see SnapshotHandle::Publish).
  Status Publish(std::shared_ptr<EngineSnapshot> snapshot) {
    return handle_.Publish(std::move(snapshot));
  }

  /// The currently served snapshot (null until the first Publish).
  std::shared_ptr<const EngineSnapshot> snapshot() const {
    return handle_.Acquire();
  }

  /// Version of the current snapshot (0 before the first publish).
  uint64_t version() const { return handle_.version(); }

  const ServingCoreOptions& options() const { return options_; }

  /// The result cache backing this core, or null when
  /// `cache_budget_bytes == 0` (tests read its hit/miss stats).
  const cache::ResultCache* result_cache() const { return cache_.get(); }

  /// k nearest records to an original-space query under the configured
  /// default deadline. `skip_index` is a *global* record id (translated to
  /// shard-local rows on multi-shard snapshots).
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index = KnnIndex::kNoSkip,
                              QueryStats* stats = nullptr) const;

  /// Query under explicit per-call limits (overriding the default). On
  /// multi-shard snapshots every probe shares one absolute deadline.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index, QueryStats* stats,
                              const QueryLimits& limits) const;

  /// Query with an EXPLAIN profile assembled into `profile` (must be
  /// non-null), regardless of `options().explain`. The profile's totals are
  /// exactly the query's merged QueryStats, and its phases partition that
  /// work (see obs::QueryProfile).
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index, QueryStats* stats,
                              const QueryLimits& limits,
                              obs::QueryProfile* profile) const;

  /// Copies the most recent profile captured by a serial Query while
  /// `options().explain` was set; false when none has been captured yet.
  bool LastProfile(obs::QueryProfile* out) const;

  /// Status-returning serial query behind admission control. With admission
  /// disabled this delegates to Query() (bit-identical) and always returns
  /// OK. With it enabled the query first passes the AdmissionController:
  /// rejected/shed queries return kResourceExhausted without running, and
  /// admitted queries execute under the granted brownout plan (probe limit,
  /// re-rank cap) with any queue wait deducted from their deadline budget.
  /// Degradations are recorded in `stats` (brownout_level/rerank_dropped).
  Status TryQuery(const Vector& original_space_query, size_t k,
                  size_t skip_index, QueryStats* stats,
                  const QueryLimits& limits,
                  std::vector<Neighbor>* out) const;

  /// The admission controller, or null when `options().admission.enabled`
  /// is false (tests and the load generator read its exact totals).
  AdmissionController* admission() const { return admission_.get(); }

  /// One query per row, fanned across the shared thread pool; entry i
  /// equals Query(queries.Row(i), k) exactly. The default deadline applies
  /// batch-wide (one absolute expiry shared by every row).
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k,
      QueryStats* stats = nullptr) const;

  /// QueryBatch under explicit per-call limits (batch-wide deadline).
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k, QueryStats* stats,
      const QueryLimits& limits) const;

 private:
  /// True for the global single-index layout (no member mapping, no
  /// routing): the query path is projection + one index call.
  static bool SingleShard(const EngineSnapshot& snapshot) {
    return snapshot.shards.size() == 1 && snapshot.shards[0].members.empty();
  }

  /// Serial query body shared by the plain and profiled entry points; the
  /// bare uninstrumented path is only taken when `profile` is null and all
  /// observability layers are off.
  std::vector<Neighbor> QueryServe(const Vector& original_space_query,
                                   size_t k, size_t skip_index,
                                   QueryStats* stats,
                                   const QueryLimits& limits,
                                   obs::QueryProfile* profile,
                                   const BrownoutPlan* plan = nullptr) const;

  /// Uninstrumented query body; `traced` controls phase-span emission.
  /// `cache_key` (null when the call is not cacheable) lets the single-
  /// shard path reuse and store the projected query vector in the cache.
  /// A non-null `profile` collects the project/scan (or route/probe/merge)
  /// phase breakdown.
  std::vector<Neighbor> QueryOnSnapshot(const EngineSnapshot& snapshot,
                                        const Vector& query, size_t k,
                                        size_t skip_index, QueryStats* stats,
                                        const QueryLimits& limits, bool traced,
                                        const cache::CacheKey* cache_key =
                                            nullptr,
                                        obs::QueryProfile* profile = nullptr,
                                        const BrownoutPlan* plan =
                                            nullptr) const;

  /// Full cache key for one serial query (or batch row) against `snapshot`.
  cache::CacheKey MakeCacheKey(uint64_t snapshot_version,
                               uint64_t metric_hash, const Vector& query,
                               size_t k) const;

  /// Routed multi-probe scatter-gather over the shard set. `allow_parallel`
  /// is false on batch rows (the row fan-out already owns the pool).
  std::vector<Neighbor> QueryMultiShard(
      const EngineSnapshot& snapshot, const Vector& query, size_t k,
      size_t skip_index, QueryStats* stats, const CancelToken* cancel,
      std::chrono::steady_clock::time_point deadline, bool has_deadline,
      bool traced, bool allow_parallel, obs::QueryProfile* profile = nullptr,
      const BrownoutPlan* plan = nullptr) const;

  /// Probed shard ids for a studentized query, nearest first. A brownout
  /// plan may cap the probe count below the configured probe_shards.
  std::vector<size_t> RouteShards(const EngineSnapshot& snapshot,
                                  const Vector& studentized_query,
                                  const BrownoutPlan* plan = nullptr) const;

  ServingCoreOptions options_;
  SnapshotHandle handle_;

  // Overload policy; null while options_.admission.enabled is false (every
  // admission branch gates on that, so the disabled query path stays
  // byte-identical to the pre-admission code).
  std::unique_ptr<AdmissionController> admission_;

  // Result/projection cache from the process-wide manager; null while
  // cache_budget_bytes == 0 (every cache branch below gates on that, so the
  // disabled query path stays bit-identical to the cache-free code).
  std::shared_ptr<cache::ResultCache> cache_;

  // Registry metrics and interned span names (process lifetime), resolved
  // once at construction.
  obs::ServingPathMetrics metrics_;
  const char* span_query_ = nullptr;
  const char* span_project_ = nullptr;
  const char* span_query_batch_ = nullptr;
  const char* span_project_batch_ = nullptr;
  const char* span_probe_ = nullptr;
  const char* span_cache_lookup_ = nullptr;
  const char* span_cache_insert_ = nullptr;
  // Interned copy of options_.scope for query-log events (ring records may
  // outlive this core).
  const char* log_scope_ = nullptr;

  // Most recent EXPLAIN profile captured under options_.explain. A mutex is
  // fine here: explain is a diagnostic mode, not the serving fast path.
  mutable std::mutex profile_mu_;
  mutable obs::QueryProfile last_profile_;
  mutable bool has_profile_ = false;
};

}  // namespace cohere

#endif  // COHERE_CORE_SERVING_H_
