#include "core/engine.h"

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "obs/tracing.h"
#include "index/kd_tree.h"
#include "index/linear_scan.h"
#include "index/va_file.h"
#include "index/rstar_tree.h"
#include "index/vp_tree.h"

namespace cohere {

const char* IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kLinearScan:
      return "linear_scan";
    case IndexBackend::kKdTree:
      return "kd_tree";
    case IndexBackend::kVaFile:
      return "va_file";
    case IndexBackend::kVpTree:
      return "vp_tree";
    case IndexBackend::kRStarTree:
      return "rstar_tree";
  }
  return "unknown";
}

Result<ReducedSearchEngine> ReducedSearchEngine::Build(
    const Dataset& dataset, const EngineOptions& options) {
  if (dataset.NumRecords() == 0) {
    return Status::InvalidArgument("cannot build an engine on an empty dataset");
  }

  obs::TraceSpan trace("engine.build");
  Stopwatch build_watch;

  ReducedSearchEngine engine;
  engine.options_ = options;
  if (options.trace_slow_query_us > 0.0) {
    obs::Tracer::Global().EnableSlowQueryCapture(options.trace_slow_query_us);
  }
  if (options.num_threads != 0) {
    const size_t before = ParallelThreadCount();
    SetParallelThreadCount(options.num_threads);
    const size_t after = ParallelThreadCount();
    if (after != before) {
      // "Most recently built engine wins" is easy to trip over (a stray
      // num_threads=1 build silently serializes the whole process); make the
      // reconfiguration observable.
      COHERE_LOG(Info) << "ReducedSearchEngine::Build resized the shared "
                          "thread pool from " << before << " to " << after
                       << " threads (EngineOptions::num_threads)";
    }
  }
  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry::Global().GetGauge("parallel.threads")->Set(
        static_cast<double>(ParallelThreadCount()));
  }

  Result<ReductionPipeline> pipeline =
      ReductionPipeline::Fit(dataset, options.reduction);
  if (!pipeline.ok()) return pipeline.status();
  engine.pipeline_ = std::move(*pipeline);

  engine.metric_ = MakeMetric(options.metric, options.metric_p);
  Matrix reduced = [&] {
    obs::TraceSpan project("engine.project_dataset");
    return engine.pipeline_.model().ProjectRows(
        dataset.features(), engine.pipeline_.components());
  }();

  // Covers the backend construction (and the trailing registry lookups,
  // which are negligible against any real index build).
  obs::TraceSpan index_build("engine.index_build");
  switch (options.backend) {
    case IndexBackend::kLinearScan:
      engine.index_ = std::make_unique<LinearScanIndex>(std::move(reduced),
                                                        engine.metric_.get());
      break;
    case IndexBackend::kKdTree:
      if (!engine.metric_->IsTrueMetric()) {
        return Status::InvalidArgument(
            "kd_tree backend requires a true metric; use linear_scan");
      }
      engine.index_ = std::make_unique<KdTreeIndex>(
          std::move(reduced), engine.metric_.get(), options.kd_leaf_size);
      break;
    case IndexBackend::kVaFile: {
      const MetricKind kind = engine.metric_->kind();
      if (kind != MetricKind::kEuclidean && kind != MetricKind::kManhattan &&
          kind != MetricKind::kChebyshev) {
        return Status::InvalidArgument(
            "va_file backend requires an L1/L2/Linf metric");
      }
      engine.index_ = std::make_unique<VaFileIndex>(
          std::move(reduced), engine.metric_.get(), options.va_bits_per_dim);
      break;
    }
    case IndexBackend::kVpTree:
      if (!engine.metric_->IsTrueMetric()) {
        return Status::InvalidArgument(
            "vp_tree backend requires a true metric; use linear_scan");
      }
      engine.index_ = std::make_unique<VpTreeIndex>(
          std::move(reduced), engine.metric_.get(), options.vp_leaf_size);
      break;
    case IndexBackend::kRStarTree: {
      const MetricKind kind = engine.metric_->kind();
      if (kind != MetricKind::kEuclidean && kind != MetricKind::kManhattan &&
          kind != MetricKind::kChebyshev) {
        return Status::InvalidArgument(
            "rstar_tree backend requires an L1/L2/Linf metric");
      }
      engine.index_ = std::make_unique<RStarTreeIndex>(
          std::move(reduced), engine.metric_.get(),
          options.rstar_max_entries);
      break;
    }
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  engine.query_latency_us_ = registry.GetHistogram("engine.query_latency_us");
  engine.batch_latency_us_ = registry.GetHistogram("engine.batch_latency_us");
  engine.queries_ = registry.GetCounter("engine.queries");
  if (obs::MetricsRegistry::Enabled()) {
    registry.GetCounter("engine.builds")->Increment();
    registry.GetHistogram("engine.build_latency_us")
        ->Record(build_watch.ElapsedMicros());
  }
  return engine;
}

std::vector<Neighbor> ReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats) const {
  QueryLimits limits;
  limits.deadline_us = options_.query_deadline_us;
  return Query(original_space_query, k, skip_index, stats, limits);
}

std::vector<Neighbor> ReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats, const QueryLimits& limits) const {
  const bool instrumented = obs::MetricsRegistry::Enabled();
  if (!instrumented && !obs::Tracer::Enabled()) {
    // Both layers off: the exact uninstrumented path.
    const Vector reduced = pipeline_.TransformPoint(original_space_query);
    return index_->Query(reduced, k, skip_index, stats, limits);
  }
  // Root span of the serial query path; the per-query sampling (and slow-
  // query) decision is made here, and the projection / backend phases below
  // nest under it.
  obs::TraceSpan span("engine.query");
  span.AddArg("k", static_cast<double>(k));
  obs::ScopedTimer timer(instrumented ? query_latency_us_ : nullptr);
  if (instrumented) queries_->Increment();
  Vector reduced = [&] {
    obs::TraceSpan project("engine.project");
    return pipeline_.TransformPoint(original_space_query);
  }();
  return index_->Query(reduced, k, skip_index, stats, limits);
}

std::vector<std::vector<Neighbor>> ReducedSearchEngine::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats) const {
  QueryLimits limits;
  limits.deadline_us = options_.query_deadline_us;
  return QueryBatch(original_space_queries, k, stats, limits);
}

std::vector<std::vector<Neighbor>> ReducedSearchEngine::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats,
    const QueryLimits& limits) const {
  obs::TraceSpan trace("engine.query_batch");
  obs::ScopedTimer timer(
      obs::MetricsRegistry::Enabled() ? batch_latency_us_ : nullptr);
  const size_t n = original_space_queries.rows();
  Matrix reduced(n, ReducedDims());
  {
    // Row transforms are independent; reduce them across the pool before
    // the index fans the reduced rows back out. Pool-lane chunks emit no
    // spans of their own — the caller-side span covers the whole phase.
    obs::TraceSpan project("engine.project_batch");
    ParallelFor(0, n, /*grain=*/16, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        reduced.SetRow(
            i, pipeline_.TransformPoint(original_space_queries.Row(i)));
      }
    });
  }
  return index_->QueryBatch(reduced, k, stats, limits);
}

std::string ReducedSearchEngine::Describe() const {
  std::string out = "ReducedSearchEngine\n";
  out += "  reduction: " + pipeline_.Describe() + "\n";
  out += "  backend:   " + std::string(IndexBackendName(options_.backend)) +
         " (" + metric_->name() + ")\n";
  return out;
}

}  // namespace cohere
