#include "core/engine.h"

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "obs/tracing.h"
#include "index/kd_tree.h"
#include "index/linear_scan.h"
#include "index/va_file.h"
#include "index/rstar_tree.h"
#include "index/vp_tree.h"

namespace cohere {

const char* IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kLinearScan:
      return "linear_scan";
    case IndexBackend::kKdTree:
      return "kd_tree";
    case IndexBackend::kVaFile:
      return "va_file";
    case IndexBackend::kVpTree:
      return "vp_tree";
    case IndexBackend::kRStarTree:
      return "rstar_tree";
  }
  return "unknown";
}

Result<ReducedSearchEngine> ReducedSearchEngine::Build(
    const Dataset& dataset, const EngineOptions& options) {
  if (dataset.NumRecords() == 0) {
    return Status::InvalidArgument("cannot build an engine on an empty dataset");
  }

  obs::TraceSpan trace("engine.build");
  Stopwatch build_watch;

  ReducedSearchEngine engine;
  engine.options_ = options;
  if (options.trace_slow_query_us > 0.0) {
    obs::Tracer::Global().EnableSlowQueryCapture(options.trace_slow_query_us);
  }
  if (options.num_threads != 0) {
    const size_t before = ParallelThreadCount();
    SetParallelThreadCount(options.num_threads);
    const size_t after = ParallelThreadCount();
    if (after != before) {
      // "Most recently built engine wins" is easy to trip over (a stray
      // num_threads=1 build silently serializes the whole process); make the
      // reconfiguration observable.
      COHERE_LOG(Info) << "ReducedSearchEngine::Build resized the shared "
                          "thread pool from " << before << " to " << after
                       << " threads (EngineOptions::num_threads)";
    }
  }
  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry::Global().GetGauge("parallel.threads")->Set(
        static_cast<double>(ParallelThreadCount()));
  }

  Result<ReductionPipeline> pipeline =
      ReductionPipeline::Fit(dataset, options.reduction);
  if (!pipeline.ok()) return pipeline.status();

  std::shared_ptr<const Metric> metric =
      MakeMetric(options.metric, options.metric_p, options.fast_math);
  // One blocked copy of the reduced rows, owned by the shard and shared with
  // whichever backend is built over it.
  std::shared_ptr<const BlockedMatrix> rows = [&] {
    obs::TraceSpan project("engine.project_dataset");
    return std::make_shared<const BlockedMatrix>(
        pipeline->model().ProjectRows(dataset.features(),
                                      pipeline->components()));
  }();

  // Covers the backend construction (and the trailing publish, which is
  // negligible against any real index build).
  obs::TraceSpan index_build("engine.index_build");
  std::unique_ptr<KnnIndex> index;
  switch (options.backend) {
    case IndexBackend::kLinearScan:
      index = std::make_unique<LinearScanIndex>(rows, metric.get());
      break;
    case IndexBackend::kKdTree:
      if (!metric->IsTrueMetric()) {
        return Status::InvalidArgument(
            "kd_tree backend requires a true metric; use linear_scan");
      }
      index = std::make_unique<KdTreeIndex>(rows, metric.get(),
                                            options.kd_leaf_size);
      break;
    case IndexBackend::kVaFile: {
      const MetricKind kind = metric->kind();
      if (kind != MetricKind::kEuclidean && kind != MetricKind::kManhattan &&
          kind != MetricKind::kChebyshev) {
        return Status::InvalidArgument(
            "va_file backend requires an L1/L2/Linf metric");
      }
      index = std::make_unique<VaFileIndex>(rows, metric.get(),
                                            options.va_bits_per_dim);
      break;
    }
    case IndexBackend::kVpTree:
      if (!metric->IsTrueMetric()) {
        return Status::InvalidArgument(
            "vp_tree backend requires a true metric; use linear_scan");
      }
      index = std::make_unique<VpTreeIndex>(rows, metric.get(),
                                            options.vp_leaf_size);
      break;
    case IndexBackend::kRStarTree: {
      const MetricKind kind = metric->kind();
      if (kind != MetricKind::kEuclidean && kind != MetricKind::kManhattan &&
          kind != MetricKind::kChebyshev) {
        return Status::InvalidArgument(
            "rstar_tree backend requires an L1/L2/Linf metric");
      }
      index = std::make_unique<RStarTreeIndex>(rows, metric.get(),
                                               options.rstar_max_entries);
      break;
    }
  }

  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->metric = std::move(metric);
  SnapshotShard shard;
  shard.pipeline = std::move(*pipeline);
  shard.rows = std::move(rows);
  shard.index = std::move(index);
  snapshot->shards.push_back(std::move(shard));
  if (dataset.HasLabels()) snapshot->labels = dataset.labels();

  ServingCoreOptions serving_options;
  serving_options.scope = "engine";
  serving_options.default_deadline_us = options.query_deadline_us;
  serving_options.cache_budget_bytes = options.cache_budget_bytes;
  serving_options.explain = options.explain;
  serving_options.admission = options.admission;
  engine.serving_ = std::make_unique<ServingCore>(serving_options);
  // The initial publish of a handle never fails (the fault point only
  // covers replacement publishes).
  COHERE_CHECK(engine.serving_->Publish(std::move(snapshot)).ok());
  engine.snapshot_ = engine.serving_->snapshot();

  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("engine.builds")->Increment();
    registry.GetHistogram("engine.build_latency_us")
        ->Record(build_watch.ElapsedMicros());
  }
  return engine;
}

std::vector<Neighbor> ReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats) const {
  return serving_->Query(original_space_query, k, skip_index, stats);
}

std::vector<Neighbor> ReducedSearchEngine::Query(
    const Vector& original_space_query, size_t k, size_t skip_index,
    QueryStats* stats, const QueryLimits& limits) const {
  return serving_->Query(original_space_query, k, skip_index, stats, limits);
}

std::vector<std::vector<Neighbor>> ReducedSearchEngine::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats) const {
  return serving_->QueryBatch(original_space_queries, k, stats);
}

std::vector<std::vector<Neighbor>> ReducedSearchEngine::QueryBatch(
    const Matrix& original_space_queries, size_t k, QueryStats* stats,
    const QueryLimits& limits) const {
  return serving_->QueryBatch(original_space_queries, k, stats, limits);
}

std::string ReducedSearchEngine::Describe() const {
  std::string out = "ReducedSearchEngine\n";
  out += "  reduction: " + pipeline().Describe() + "\n";
  out += "  backend:   " + std::string(IndexBackendName(options_.backend)) +
         " (" + snapshot_->metric->name() + ")\n";
  return out;
}

}  // namespace cohere
