#ifndef COHERE_CORE_DYNAMIC_ENGINE_H_
#define COHERE_CORE_DYNAMIC_ENGINE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "data/dataset.h"
#include "index/knn.h"
#include "index/metric.h"
#include "obs/metrics.h"
#include "reduction/pipeline.h"

namespace cohere {

/// Options for DynamicReducedIndex::Build.
struct DynamicEngineOptions {
  ReductionOptions reduction;
  MetricKind metric = MetricKind::kEuclidean;
  double metric_p = 0.5;
  /// A refit is recommended when the mean reconstruction error of recently
  /// inserted records exceeds this multiple of the baseline error measured
  /// at fit time (>= 1).
  double drift_threshold = 1.5;
  /// Number of most recent insertions in the drift estimate.
  size_t drift_window = 100;
  /// Default wall-clock budget per Query (and per QueryBatch as a whole) in
  /// microseconds; 0 disables. Per-call QueryLimits override it.
  double query_deadline_us = 0.0;
  /// Query-result cache budget in bytes (see EngineOptions). Entries are
  /// keyed on the snapshot version, so every Insert/Refit publish
  /// implicitly invalidates — stale versions age out via eviction.
  size_t cache_budget_bytes = 0;
  /// Capture a per-query EXPLAIN profile for every serial Query (see
  /// ServingCoreOptions::explain). Off by default.
  bool explain = false;
  /// Overload policy (admission control, load shedding, brownout, circuit
  /// breaker; see core/admission.h). Disabled by default — the query path
  /// stays bit-identical to the pre-admission code. With it enabled use
  /// serving().TryQuery() as the rejectable entry point.
  AdmissionOptions admission;
  /// Retry discipline for the insert path's snapshot publish: a publish
  /// that fails (e.g. an injected `core.snapshot.publish` fault) is retried
  /// up to `insert_retry.max_attempts` times with jittered backoff, bounded
  /// by the token-bucket retry budget so a persistent fault cannot amplify
  /// itself. The same policy's capped-exponential ladder drives the refit
  /// backoff gate.
  RetryPolicyOptions insert_retry;
};

/// A reduced similarity index for *dynamic* data sets (the concern of the
/// paper's reference [17], Ravi Kanth et al., SIGMOD 1998): records can be
/// inserted after the reduction was fitted, the index answers queries
/// immediately, and a drift monitor based on reconstruction error flags
/// when the fitted axis system has gone stale so the caller can Refit().
///
/// The monitor's logic: the retained components were chosen for the fit-time
/// distribution; if newly inserted records systematically lose more energy
/// under projection than the fit-time records did, the concepts have moved.
///
/// Concurrency: queries are lock-free readers of an RCU-published snapshot
/// (see core/snapshot.h) and may run from any number of threads concurrently
/// with Insert() and Refit(). Writers build the successor snapshot aside
/// under an internal mutex (serializing Insert/Refit against each other) and
/// publish it atomically; a query that started on the old snapshot keeps it
/// alive and finishes on it.
class DynamicReducedIndex {
 public:
  DynamicReducedIndex(DynamicReducedIndex&&) = default;
  DynamicReducedIndex& operator=(DynamicReducedIndex&&) = default;
  DynamicReducedIndex(const DynamicReducedIndex&) = delete;
  DynamicReducedIndex& operator=(const DynamicReducedIndex&) = delete;

  /// Fits the reduction on `dataset` and indexes its records.
  static Result<DynamicReducedIndex> Build(
      const Dataset& dataset, const DynamicEngineOptions& options);

  /// Inserts a record given in the original attribute space. `label` may be
  /// kNoLabel for unlabeled records. The record is immediately queryable:
  /// the insert copy-on-writes a successor snapshot and publishes it, so
  /// concurrent queries see either the old or the new state, never a torn
  /// one.
  Status Insert(const Vector& record, int label = kNoLabel);

  /// k nearest records (by the reduced-space metric) to an original-space
  /// query. Indices are insertion-ordered: the fit-time records first, then
  /// inserts in arrival order. Honors
  /// DynamicEngineOptions::query_deadline_us.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index = KnnIndex::kNoSkip,
                              QueryStats* stats = nullptr) const;

  /// Query under explicit limits: when the deadline passes or the token is
  /// cancelled the scan stops at its next control check and returns the
  /// best neighbors so far with `stats->truncated` set (see KnnIndex).
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index, QueryStats* stats,
                              const QueryLimits& limits) const;

  /// Batched form of Query: one original-space query per row, fanned across
  /// the shared thread pool; entry i equals Query(queries.Row(i), k)
  /// exactly. The default deadline applies batch-wide.
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k,
      QueryStats* stats = nullptr) const;

  /// QueryBatch under explicit per-call limits (batch-wide deadline).
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k, QueryStats* stats,
      const QueryLimits& limits) const;

  /// Total records currently indexed.
  size_t size() const { return serving_->snapshot()->labels.size(); }
  /// Label of record `i` (kNoLabel when unlabeled).
  int label(size_t i) const;

  /// Mean squared normalized-space reconstruction error of the fit-time
  /// records under the current pipeline.
  double BaselineReconstructionError() const;
  /// Same statistic over the drift window of recent inserts; falls back to
  /// the baseline while the window is empty.
  double RecentReconstructionError() const;
  /// Recent / baseline; 1 means "as fresh as at fit time".
  double DriftRatio() const;
  /// True when DriftRatio() exceeds the configured threshold and the window
  /// holds enough observations (at least a quarter of drift_window) — and
  /// the index is not inside the post-failure retry backoff (see Refit).
  bool NeedsRefit() const;

  /// Refits the reduction on all current records, reprojects everything and
  /// resets the drift monitor.
  ///
  /// Transactional: the replacement pipeline, projection, and index are
  /// built aside and swapped in as one snapshot publish only on success. On
  /// failure (e.g. NumericalError, or an injected publish fault) the index
  /// keeps serving the previous snapshot unchanged, the
  /// `dynamic_index.refit_failures` counter is bumped, and NeedsRefit()
  /// goes quiet for a capped-exponential number of inserts so a poisoned
  /// dataset cannot wedge the insert path in refit retries. An explicit
  /// Refit() call always attempts (the backoff only gates the
  /// recommendation); success resets the backoff.
  Status Refit();

  /// Inserts remaining before NeedsRefit() may recommend again after a
  /// failed refit (0 when not backing off).
  size_t RefitBackoffRemaining() const;

  /// The currently serving pipeline. The reference is valid until the next
  /// Insert()/Refit() publish; callers that mutate concurrently should copy
  /// what they need.
  const ReductionPipeline& pipeline() const {
    return serving_->snapshot()->shards[0].pipeline;
  }

  /// Version of the serving snapshot (1 after Build, +1 per successful
  /// Insert/Refit publish).
  uint64_t SnapshotVersion() const { return serving_->version(); }

  /// The serving substrate (snapshot handle, metrics, query plumbing).
  const ServingCore& serving() const { return *serving_; }

  /// One-line status ("n=520 dims=8 drift=1.82 REFIT").
  std::string Describe() const;

  static constexpr int kNoLabel = -1;

 private:
  DynamicReducedIndex() = default;

  /// Squared reconstruction error of an original-space record in the
  /// pipeline's normalized space.
  static double ReconstructionErrorSq(const ReductionPipeline& pipeline,
                                      const Vector& record);

  /// Drift-monitor and refit-backoff state, owned by the writer side and
  /// guarded by `mu` (readers of the serving snapshot never touch it).
  /// Boxed so the facade stays movable.
  struct WriterState {
    explicit WriterState(const RetryPolicyOptions& retry_options)
        : insert_retry(retry_options) {}
    std::mutex mu;
    size_t fitted_records = 0;  // records the current fit used
    double baseline_error = 0.0;
    std::deque<double> recent_errors;
    size_t consecutive_refit_failures = 0;
    size_t backoff_remaining_inserts = 0;
    /// Bounded publish-retry for Insert (see
    /// DynamicEngineOptions::insert_retry); used under `mu`.
    RetryPolicy insert_retry;
  };

  double RecentReconstructionErrorLocked() const;
  double DriftRatioLocked() const;

  // Post-failure retry backoff: 8, 16, 32, ... up to 128 inserts between
  // refit recommendations; reset by a successful Refit().
  static constexpr size_t kRefitBackoffBaseInserts = 8;
  static constexpr size_t kRefitBackoffCapInserts = 128;

  DynamicEngineOptions options_;
  size_t dims_ = 0;  // original dimensionality (immutable after Build)
  std::unique_ptr<ServingCore> serving_;
  std::unique_ptr<WriterState> writer_;

  // Registry metrics (process-lifetime pointers), resolved once at Build;
  // the query path reports through the serving core, the mutation path
  // records insert/refit counters plus a drift gauge.
  obs::Counter* inserts_ = nullptr;
  obs::Counter* refits_ = nullptr;
  obs::Counter* refit_failures_ = nullptr;
  obs::Gauge* drift_gauge_ = nullptr;
  // Inserts remaining in the post-refit-failure gate (satellite of the
  // overload work: lets the load generator observe refit pressure).
  obs::Gauge* insert_backoff_gauge_ = nullptr;
};

}  // namespace cohere

#endif  // COHERE_CORE_DYNAMIC_ENGINE_H_
