#include "core/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/fault.h"

namespace cohere {
namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Same generator the fault layer uses for its probability draws: stateless
// per draw, so the jitter stream replays exactly for a fixed seed.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

AdmissionController::AdmissionController(std::string scope,
                                         const AdmissionOptions& options,
                                         obs::WindowClock clock)
    : scope_(std::move(scope)), options_(options), clock_(std::move(clock)) {
  completions_window_.emplace(&completions_, options_.breaker_window, clock_);
  failures_window_.emplace(&failures_, options_.breaker_window, clock_);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  m_admitted_ = registry.GetCounter("admission.admitted");
  m_queued_ = registry.GetCounter("admission.queued");
  m_shed_ = registry.GetCounter("admission.shed");
  m_rejected_ = registry.GetCounter("admission.rejected");
  m_breaker_open_ = registry.GetCounter("admission.breaker_open");
  g_queue_depth_ = registry.GetGauge("admission.queue_depth");
  g_brownout_level_ = registry.GetGauge("admission.brownout_level");
}

uint64_t AdmissionController::NowUs() const {
  return clock_ ? clock_() : SteadyNowUs();
}

void AdmissionController::AdvanceBreakerLocked(uint64_t now_us) {
  if (breaker_ == Breaker::kOpen) {
    if (now_us >= breaker_open_until_us_) {
      breaker_ = Breaker::kHalfOpen;
      half_open_granted_ = 0;
      half_open_pending_ = 0;
      half_open_failed_ = false;
    }
    return;
  }
  if (breaker_ != Breaker::kClosed) return;
  // WindowValue() rotates the buckets to the clock's current time, so the
  // ratio below always covers exactly the configured window.
  const uint64_t completions = completions_window_->WindowValue();
  if (completions < options_.breaker_min_samples) return;
  const uint64_t failures = failures_window_->WindowValue();
  const double ratio =
      static_cast<double>(failures) / static_cast<double>(completions);
  if (ratio >= options_.breaker_failure_ratio) {
    breaker_ = Breaker::kOpen;
    breaker_open_until_us_ =
        now_us + static_cast<uint64_t>(std::max(0.0, options_.breaker_open_us));
    ++totals_.breaker_trips;
    if (obs::MetricsRegistry::Enabled()) m_breaker_open_->Increment();
  }
}

size_t AdmissionController::BrownoutLevelLocked() const {
  if (pressure_ewma_ >= options_.brownout_l2_pressure) return 2;
  if (pressure_ewma_ >= options_.brownout_l1_pressure) return 1;
  return 0;
}

void AdmissionController::ApplyBrownout(size_t level, AdmissionGrant* grant) {
  grant->brownout_level = level;
  if (level >= 1) grant->rerank_cap = options_.brownout_rerank_cap;
  if (level >= 2) grant->probe_limit = 1;
}

void AdmissionController::RecordGaugesLocked() {
  if (!obs::MetricsRegistry::Enabled()) return;
  g_queue_depth_->Set(static_cast<double>(waiting_));
  g_brownout_level_->Set(static_cast<double>(BrownoutLevelLocked()));
}

AdmissionGrant AdmissionController::Admit(double remaining_budget_us) {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t now = NowUs();
  ++totals_.offered;
  AdvanceBreakerLocked(now);
  // Queue pressure feeds the ladder before this arrival's own fate is
  // decided, so sustained backlog degrades the *next* queries too.
  const double occupancy =
      options_.max_queue == 0
          ? (waiting_ > 0 ? 1.0 : 0.0)
          : std::min(1.0, static_cast<double>(waiting_) /
                              static_cast<double>(options_.max_queue));
  pressure_ewma_ = options_.ewma_alpha * occupancy +
                   (1.0 - options_.ewma_alpha) * pressure_ewma_;

  AdmissionGrant grant;
  const bool enabled = obs::MetricsRegistry::Enabled();
  if (COHERE_INJECT_FAULT(fault::kPointAdmissionShed)) {
    ++totals_.shed;
    if (enabled) m_shed_->Increment();
    grant.status = Status::ResourceExhausted(
        scope_ + ": query shed (injected admission fault)");
    RecordGaugesLocked();
    return grant;
  }
  if (breaker_ == Breaker::kOpen ||
      (breaker_ == Breaker::kHalfOpen &&
       half_open_granted_ >= options_.breaker_half_open_probes)) {
    ++totals_.rejected;
    if (enabled) m_rejected_->Increment();
    grant.status = Status::ResourceExhausted(
        scope_ + ": circuit breaker open (windowed failure rate exceeded)");
    RecordGaugesLocked();
    return grant;
  }
  // Feasibility gate: a query whose remaining budget is already below the
  // expected service time cannot finish in time — shed it now instead of
  // letting it rot in the queue (no queue-collapse).
  if (remaining_budget_us > 0.0 && service_ewma_us_ > 0.0 &&
      remaining_budget_us < service_ewma_us_) {
    ++totals_.shed;
    if (enabled) m_shed_->Increment();
    grant.status = Status::ResourceExhausted(
        scope_ + ": query shed (remaining deadline below expected service "
                 "time)");
    RecordGaugesLocked();
    return grant;
  }

  auto admit_now = [&]() {
    ++inflight_;
    ++totals_.admitted;
    if (enabled) m_admitted_->Increment();
    if (breaker_ == Breaker::kHalfOpen) {
      ++half_open_granted_;
      ++half_open_pending_;
    }
    const size_t level = BrownoutLevelLocked();
    ApplyBrownout(level, &grant);
    if (level > 0) ++totals_.brownout_queries;
    grant.admitted = true;
    RecordGaugesLocked();
  };

  if (inflight_ < options_.max_concurrency) {
    admit_now();
    return grant;
  }
  if (waiting_ >= options_.max_queue) {
    ++totals_.shed;
    if (enabled) m_shed_->Increment();
    grant.status =
        Status::ResourceExhausted(scope_ + ": query shed (wait queue full)");
    RecordGaugesLocked();
    return grant;
  }

  // Queue with an absolute expiry: the query's own remaining deadline when
  // it has one, else the configured default wait. The condition variable
  // always uses the real steady clock — an injected test clock only drives
  // breaker/EWMA bookkeeping, never blocks a waiter forever.
  ++waiting_;
  ++totals_.queued;
  grant.queued = true;
  if (enabled) m_queued_->Increment();
  RecordGaugesLocked();
  const double wait_budget_us = remaining_budget_us > 0.0
                                    ? remaining_budget_us
                                    : options_.default_queue_wait_us;
  const auto expiry =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<int64_t>(std::max(1.0, wait_budget_us)));
  const bool got_slot = cv_.wait_until(lock, expiry, [&] {
    return inflight_ < options_.max_concurrency;
  });
  --waiting_;
  if (!got_slot) {
    ++totals_.shed;
    if (enabled) m_shed_->Increment();
    grant.status = Status::ResourceExhausted(
        scope_ + ": query shed (deadline expired while queued)");
    RecordGaugesLocked();
    return grant;
  }
  admit_now();
  return grant;
}

void AdmissionController::Release(double latency_us, bool success) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    COHERE_CHECK_MSG(inflight_ > 0, "Release without a matching Admit");
    --inflight_;
    if (latency_us >= 0.0 && std::isfinite(latency_us)) {
      service_ewma_us_ = service_ewma_us_ == 0.0
                             ? latency_us
                             : options_.ewma_alpha * latency_us +
                                   (1.0 - options_.ewma_alpha) *
                                       service_ewma_us_;
    }
    completions_.Increment();
    if (!success) failures_.Increment();
    const uint64_t now = NowUs();
    if (breaker_ == Breaker::kHalfOpen && half_open_pending_ > 0) {
      // Completions during HalfOpen are the probe verdicts: one failure
      // re-opens immediately; all probes succeeding re-closes with fresh
      // windows (pre-trip failures must not instantly re-trip).
      --half_open_pending_;
      if (!success) half_open_failed_ = true;
      if (half_open_failed_) {
        breaker_ = Breaker::kOpen;
        breaker_open_until_us_ =
            now +
            static_cast<uint64_t>(std::max(0.0, options_.breaker_open_us));
        ++totals_.breaker_trips;
        if (obs::MetricsRegistry::Enabled()) m_breaker_open_->Increment();
      } else if (half_open_pending_ == 0 &&
                 half_open_granted_ >= options_.breaker_half_open_probes) {
        breaker_ = Breaker::kClosed;
        completions_window_.emplace(&completions_, options_.breaker_window,
                                    clock_);
        failures_window_.emplace(&failures_, options_.breaker_window, clock_);
      }
    } else {
      AdvanceBreakerLocked(now);
    }
    RecordGaugesLocked();
  }
  cv_.notify_one();
}

AdmissionTotals AdmissionController::Totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

size_t AdmissionController::BrownoutLevel() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BrownoutLevelLocked();
}

std::string AdmissionController::BreakerState() const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (breaker_) {
    case Breaker::kClosed:
      return "closed";
    case Breaker::kOpen:
      return "open";
    case Breaker::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

// --- RetryPolicy -----------------------------------------------------------

RetryPolicy::RetryPolicy(const RetryPolicyOptions& options,
                         obs::WindowClock clock)
    : options_(options), clock_(std::move(clock)),
      tokens_(options.budget_tokens) {
  m_retries_ = obs::MetricsRegistry::Global().GetCounter("admission.retries");
}

uint64_t RetryPolicy::NowUs() const {
  return clock_ ? clock_() : SteadyNowUs();
}

size_t RetryPolicy::CappedExponentialSteps(size_t base, size_t cap,
                                           size_t consecutive_failures) {
  if (consecutive_failures == 0 || base == 0) return 0;
  const size_t shift = std::min<size_t>(consecutive_failures - 1, 16);
  return std::min(cap, base << shift);
}

double RetryPolicy::BackoffUs(size_t attempt) {
  if (attempt == 0) attempt = 1;
  double raw = options_.base_backoff_us;
  for (size_t i = 1; i < attempt && raw < options_.max_backoff_us; ++i) {
    raw *= 2.0;
  }
  raw = std::min(raw, options_.max_backoff_us);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t draw =
      SplitMix64(options_.seed ^ (0x9e3779b97f4a7c15ull * (++draws_)));
  // 53 high bits -> uniform [0, 1); jitter spreads retries over [0.5, 1.0)
  // of the capped exponential step.
  const double unit =
      static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  return raw * (0.5 + 0.5 * unit);
}

void RetryPolicy::RefillLocked(uint64_t now_us) {
  if (!refill_initialized_) {
    refill_initialized_ = true;
    last_refill_us_ = now_us;
    return;
  }
  if (now_us <= last_refill_us_) return;
  const double elapsed_s =
      static_cast<double>(now_us - last_refill_us_) / 1e6;
  tokens_ = std::min(options_.budget_tokens,
                     tokens_ + elapsed_s * options_.tokens_per_second);
  last_refill_us_ = now_us;
}

bool RetryPolicy::AcquireRetry(size_t attempt) {
  if (attempt == 0 || attempt >= options_.max_attempts) return false;
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(NowUs());
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  if (obs::MetricsRegistry::Enabled()) m_retries_->Increment();
  return true;
}

double RetryPolicy::TokensAvailable() {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(NowUs());
  return tokens_;
}

}  // namespace cohere
