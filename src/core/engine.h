#ifndef COHERE_CORE_ENGINE_H_
#define COHERE_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/serving.h"
#include "core/snapshot.h"
#include "data/dataset.h"
#include "index/knn.h"
#include "index/metric.h"
#include "reduction/pipeline.h"

namespace cohere {

/// Which k-NN engine serves queries in the reduced space.
enum class IndexBackend {
  kLinearScan,
  kKdTree,
  kVaFile,
  kVpTree,
  kRStarTree,
};

const char* IndexBackendName(IndexBackend backend);

/// Options for ReducedSearchEngine::Build.
struct EngineOptions {
  ReductionOptions reduction;
  IndexBackend backend = IndexBackend::kKdTree;
  MetricKind metric = MetricKind::kEuclidean;
  /// p for the fractional metric (ignored otherwise).
  double metric_p = 0.5;
  /// Opt-in fast-math distance kernels for single-row Metric::Distance /
  /// ComparableDistance calls (tree traversals, routing): wider striped
  /// accumulators and FMA where the CPU has them. Faster, but sums in a
  /// different order than the scalar reference, so results are no longer
  /// bit-identical to the default mode (they differ by normal floating-point
  /// reassociation error). Block scans are unaffected — they are bitwise
  /// exact at every dispatch level. Off by default; ignored by the
  /// fractional metric (std::pow dominates). See DESIGN.md §13.
  bool fast_math = false;
  size_t kd_leaf_size = 16;
  size_t va_bits_per_dim = 5;
  size_t vp_leaf_size = 8;
  size_t rstar_max_entries = 16;
  /// Threads for the shared parallel-execution layer (see common/parallel.h):
  /// fitting kernels and QueryBatch fan-out. 0 keeps the current pool
  /// configuration (COHERE_THREADS env var, else hardware concurrency); a
  /// nonzero value reconfigures the process-wide pool at Build time, so the
  /// most recently built engine's setting wins. 1 forces fully serial,
  /// deterministic execution.
  size_t num_threads = 0;
  /// Slow-query tracing threshold in microseconds: root query spans at
  /// least this slow are always captured into the tracer's slow-query log,
  /// regardless of sampling (see obs/tracing.h). 0 keeps the current tracer
  /// configuration (the `COHERE_TRACE_SLOW_US` environment variable, else
  /// disabled); like num_threads, the most recently built engine wins.
  double trace_slow_query_us = 0.0;
  /// Default wall-clock budget per Query (and per QueryBatch as a whole) in
  /// microseconds; 0 disables. When the budget runs out the index traversal
  /// stops at its next control check (every QueryControl::kCheckInterval
  /// distance evaluations) and the best neighbors found so far come back
  /// with `QueryStats::truncated` set — a bounded-time partial answer
  /// instead of an unbounded exact one. Per-call QueryLimits override this
  /// default.
  double query_deadline_us = 0.0;
  /// Byte budget for the engine's query-result cache, requested from the
  /// process-wide cache::CacheManager (which may rebalance it when a global
  /// COHERE_CACHE_BUDGET cap is set). 0 — the default — disables caching
  /// and keeps the query path bit-identical to the cache-free code. With a
  /// budget, repeated queries are served from entries keyed on
  /// (snapshot version, metric, query fingerprint, k, probes); a truncated
  /// (deadline/cancel) answer is never cached.
  size_t cache_budget_bytes = 0;
  /// Capture a per-query EXPLAIN profile for every serial Query (see
  /// ServingCoreOptions::explain); read the latest one via
  /// serving().LastProfile(). Off by default.
  bool explain = false;
  /// Overload policy: admission control, load shedding, brownout, circuit
  /// breaker (see core/admission.h). Disabled by default — the query path
  /// stays bit-identical to the pre-admission code. With it enabled, use
  /// serving().TryQuery() for the Status-returning (rejectable) entry
  /// point; the plain Query() overloads bypass admission.
  AdmissionOptions admission;
};

/// The library's top-level facade: fits a coherence-driven dimensionality
/// reduction on a dataset, builds a similarity index in the reduced space,
/// and answers k-NN queries posed in the *original* attribute space.
///
/// This is the end-to-end object the paper argues for — aggressive,
/// noise-aware reduction making high-dimensional similarity search both
/// meaningful (coherent neighbors) and practical (indexable).
class ReducedSearchEngine {
 public:
  ReducedSearchEngine(ReducedSearchEngine&&) = default;
  ReducedSearchEngine& operator=(ReducedSearchEngine&&) = default;
  ReducedSearchEngine(const ReducedSearchEngine&) = delete;
  ReducedSearchEngine& operator=(const ReducedSearchEngine&) = delete;

  /// Fits the reduction on `dataset` and indexes its reduced records.
  static Result<ReducedSearchEngine> Build(const Dataset& dataset,
                                           const EngineOptions& options);

  /// k nearest indexed records to a query given in the original attribute
  /// space. `skip_index`/`stats` as in KnnIndex::Query. Honors
  /// EngineOptions::query_deadline_us (the deadline covers the index
  /// traversal; the projection is a fixed small cost).
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index = KnnIndex::kNoSkip,
                              QueryStats* stats = nullptr) const;

  /// Query under explicit per-call limits (overriding the engine default).
  /// See KnnIndex::Query for deadline/cancellation semantics.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index, QueryStats* stats,
                              const QueryLimits& limits) const;

  /// Batched form of Query: one original-space query per row. Rows are
  /// reduced and answered across the shared thread pool; entry i equals
  /// Query(queries.Row(i), k) exactly, and per-thread QueryStats are merged
  /// into `stats`. Honors EngineOptions::query_deadline_us as a batch-wide
  /// budget.
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k,
      QueryStats* stats = nullptr) const;

  /// QueryBatch under explicit per-call limits (overriding the engine
  /// default). The deadline is batch-wide; see KnnIndex::QueryBatch.
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& original_space_queries, size_t k, QueryStats* stats,
      const QueryLimits& limits) const;

  const ReductionPipeline& pipeline() const {
    return snapshot_->shards[0].pipeline;
  }
  const KnnIndex& index() const { return *snapshot_->shards[0].index; }
  const EngineOptions& options() const { return options_; }
  size_t ReducedDims() const { return pipeline().ReducedDims(); }

  /// The serving substrate (snapshot handle, metrics, query plumbing).
  const ServingCore& serving() const { return *serving_; }

  /// Multi-line human-readable configuration summary.
  std::string Describe() const;

 private:
  ReducedSearchEngine() = default;

  EngineOptions options_;
  // All query-path plumbing (deadlines, batching, metrics, tracing) lives
  // in the shared serving core; this facade only assembles the snapshot.
  std::unique_ptr<ServingCore> serving_;
  // The engine is static — its one snapshot is never replaced — so pinning
  // it here keeps the pipeline()/index() references valid for the engine's
  // lifetime.
  std::shared_ptr<const EngineSnapshot> snapshot_;
};

}  // namespace cohere

#endif  // COHERE_CORE_ENGINE_H_
