#ifndef COHERE_CORE_ENGINE_H_
#define COHERE_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/knn.h"
#include "index/metric.h"
#include "reduction/pipeline.h"

namespace cohere {

/// Which k-NN engine serves queries in the reduced space.
enum class IndexBackend {
  kLinearScan,
  kKdTree,
  kVaFile,
  kVpTree,
  kRStarTree,
};

const char* IndexBackendName(IndexBackend backend);

/// Options for ReducedSearchEngine::Build.
struct EngineOptions {
  ReductionOptions reduction;
  IndexBackend backend = IndexBackend::kKdTree;
  MetricKind metric = MetricKind::kEuclidean;
  /// p for the fractional metric (ignored otherwise).
  double metric_p = 0.5;
  size_t kd_leaf_size = 16;
  size_t va_bits_per_dim = 5;
  size_t vp_leaf_size = 8;
  size_t rstar_max_entries = 16;
};

/// The library's top-level facade: fits a coherence-driven dimensionality
/// reduction on a dataset, builds a similarity index in the reduced space,
/// and answers k-NN queries posed in the *original* attribute space.
///
/// This is the end-to-end object the paper argues for — aggressive,
/// noise-aware reduction making high-dimensional similarity search both
/// meaningful (coherent neighbors) and practical (indexable).
class ReducedSearchEngine {
 public:
  ReducedSearchEngine(ReducedSearchEngine&&) = default;
  ReducedSearchEngine& operator=(ReducedSearchEngine&&) = default;
  ReducedSearchEngine(const ReducedSearchEngine&) = delete;
  ReducedSearchEngine& operator=(const ReducedSearchEngine&) = delete;

  /// Fits the reduction on `dataset` and indexes its reduced records.
  static Result<ReducedSearchEngine> Build(const Dataset& dataset,
                                           const EngineOptions& options);

  /// k nearest indexed records to a query given in the original attribute
  /// space. `skip_index`/`stats` as in KnnIndex::Query.
  std::vector<Neighbor> Query(const Vector& original_space_query, size_t k,
                              size_t skip_index = KnnIndex::kNoSkip,
                              QueryStats* stats = nullptr) const;

  const ReductionPipeline& pipeline() const { return pipeline_; }
  const KnnIndex& index() const { return *index_; }
  const EngineOptions& options() const { return options_; }
  size_t ReducedDims() const { return pipeline_.ReducedDims(); }

  /// Multi-line human-readable configuration summary.
  std::string Describe() const;

 private:
  ReducedSearchEngine() = default;

  EngineOptions options_;
  ReductionPipeline pipeline_;
  std::unique_ptr<Metric> metric_;
  std::unique_ptr<KnnIndex> index_;
};

}  // namespace cohere

#endif  // COHERE_CORE_ENGINE_H_
