#ifndef COHERE_COMMON_STRING_UTIL_H_
#define COHERE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cohere {

/// Splits `input` on every occurrence of `delim`; adjacent delimiters yield
/// empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Returns `input` with leading and trailing ASCII whitespace removed.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Returns whether `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// Parses a base-10 floating point number; the whole (trimmed) string must be
/// consumed. "?" is treated as a missing value only by callers that opt in.
Result<double> ParseDouble(std::string_view s);

/// Parses a base-10 integer; the whole (trimmed) string must be consumed.
Result<long long> ParseInt(std::string_view s);

}  // namespace cohere

#endif  // COHERE_COMMON_STRING_UTIL_H_
