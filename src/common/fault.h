#ifndef COHERE_COMMON_FAULT_H_
#define COHERE_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace cohere {
namespace fault {

/// Deterministic fault injection for robustness testing.
///
/// A *fault point* is a named site in library code where a failure can be
/// forced: a linalg routine pretending not to converge, a loader pretending
/// the file is unreadable, a pool task throwing mid-dispatch. Points are
/// armed programmatically (Arm/Disarm) or from the environment:
///
///   COHERE_FAULT=point[:probability[:seed]][,point2[:...]]...
///
/// e.g. COHERE_FAULT=linalg.svd.converge:1.0 or
///      COHERE_FAULT=data.loader.io:0.25:42,parallel.dispatch:0.1
///
/// When nothing is armed the per-site cost is the same as disabled tracing:
/// one relaxed atomic load (the global armed count) behind the
/// COHERE_INJECT_FAULT macro — the code path is otherwise byte-identical.
/// Probability draws use a per-point SplitMix64 stream keyed on
/// (seed, draw ordinal), so a given (probability, seed) pair fires on the
/// same draws in every run regardless of thread interleaving.
///
/// Each point keeps a trigger counter; the metrics registry surfaces them
/// as `fault.<point>.triggers` counters in snapshots.

/// One registered fault point. Instances are created lazily by Point() and
/// leaked (never destroyed), so raw pointers stay valid for process life.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  /// True when the point is armed and this draw fires. Increments the
  /// trigger counter on fire. Thread-safe; deterministic for a fixed
  /// (probability, seed) independent of interleaving.
  bool ShouldFire();

  const std::string& name() const { return name_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  std::uint64_t triggers() const {
    return triggers_.load(std::memory_order_relaxed);
  }

 private:
  friend void Arm(const std::string&, double, std::uint64_t);
  friend void Disarm(const std::string&);
  friend void DisarmAll();
  friend void ResetCounters();

  const std::string name_;
  std::atomic<bool> armed_{false};
  /// Probability in [0,1] scaled to 2^64; 0 means "always fire" sentinel is
  /// not used — kAlways below marks probability >= 1.
  std::atomic<std::uint64_t> threshold_{0};
  std::atomic<bool> always_{false};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> triggers_{0};
};

/// One relaxed load; true when at least one point is armed. The macro below
/// short-circuits on this so unarmed call sites never touch the registry.
bool AnyArmed();

/// Returns the fault point registered under `name`, creating it on first
/// use. The returned pointer is valid for the life of the process.
FaultPoint* Point(const std::string& name);

/// Arms `name` so it fires with `probability` (clamped to [0,1]) using
/// `seed` for the deterministic draw stream.
void Arm(const std::string& name, double probability = 1.0,
         std::uint64_t seed = 0);

/// Disarms `name` (no-op when the point was never registered or armed).
void Disarm(const std::string& name);

/// Disarms every registered point.
void DisarmAll();

/// Resets every point's trigger/draw counters (points stay armed).
void ResetCounters();

/// Snapshot row for one registered point.
struct PointInfo {
  std::string name;
  bool armed = false;
  std::uint64_t triggers = 0;
};

/// Every point registered so far (armed or not), sorted by name.
std::vector<PointInfo> Points();

/// Parses and applies a COHERE_FAULT-style spec:
/// `point[:probability[:seed]]` entries separated by commas. Returns
/// InvalidArgument (arming nothing further) on a malformed entry: a
/// probability outside [0,1] or with trailing garbage, a negative or
/// non-numeric seed, extra `:` fields, or a point name that is neither in
/// the wired-in catalog (KnownPoints()), nor already registered, nor
/// prefixed `test.` (the escape hatch unit tests use for synthetic points).
/// Unknown names are rejected so a typo in COHERE_FAULT fails loudly
/// instead of arming a point no code ever draws from.
Status ArmFromSpec(const std::string& spec);

/// Thrown by fault points that live inside noexcept-free callback plumbing
/// (thread-pool task dispatch) where a Status cannot be returned.
class InjectedFaultError : public std::runtime_error {
 public:
  explicit InjectedFaultError(const std::string& point)
      : std::runtime_error("injected fault: " + point) {}
};

// Catalog of the points wired into the library. Tests and the tier-1 fault
// sweep iterate KnownPoints(); keep DESIGN.md §8 in sync when adding one.
inline constexpr char kPointSymmetricEigen[] = "linalg.symmetric_eigen.converge";
inline constexpr char kPointJacobiEigen[] = "linalg.jacobi_eigen.converge";
inline constexpr char kPointPowerIteration[] = "linalg.power_iteration.converge";
inline constexpr char kPointSvd[] = "linalg.svd.converge";
inline constexpr char kPointLoaderIo[] = "data.loader.io";
inline constexpr char kPointParallelDispatch[] = "parallel.dispatch";
inline constexpr char kPointReductionFit[] = "reduction.fit.primary";
inline constexpr char kPointDynamicRefit[] = "dynamic_index.refit";
inline constexpr char kPointSnapshotPublish[] = "core.snapshot.publish";
inline constexpr char kPointCacheInsertPressure[] = "cache.insert.pressure";
inline constexpr char kPointAdmissionShed[] = "core.admission.shed";

/// The wired-in catalog above, as a list (sorted by name).
std::vector<std::string> KnownPoints();

}  // namespace fault
}  // namespace cohere

/// `if (COHERE_INJECT_FAULT(fault::kPointSvd)) return Status::...;`
///
/// Disabled cost: one relaxed load of the armed count. The point pointer is
/// resolved once per call site (function-local static) only after something
/// is armed for the first time.
#define COHERE_INJECT_FAULT(point_name)                         \
  (::cohere::fault::AnyArmed() && [] {                          \
    static ::cohere::fault::FaultPoint* cohere_fault_point =    \
        ::cohere::fault::Point(point_name);                     \
    return cohere_fault_point->ShouldFire();                    \
  }())

#endif  // COHERE_COMMON_FAULT_H_
