#ifndef COHERE_COMMON_PARALLEL_H_
#define COHERE_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cohere {

/// Shared parallel-execution layer.
///
/// A single lazily-initialized process-wide thread pool backs every parallel
/// kernel in the library (GEMM row-blocking, covariance accumulation,
/// coherence moments, batched k-NN queries). The pool is created on the
/// first parallel region and sized by, in priority order:
///
///   1. SetParallelThreadCount(n) with n >= 1 (EngineOptions::num_threads
///      routes here),
///   2. the COHERE_THREADS environment variable,
///   3. std::thread::hardware_concurrency().
///
/// Determinism: with 1 thread every ParallelFor runs the body once over the
/// whole range on the calling thread — byte-for-byte the pre-parallel serial
/// code path. With N threads, ParallelFor callers must write disjoint
/// outputs (results are then identical for any partition), and reductions
/// go through ParallelForIndexed, whose chunk layout depends only on
/// (range, grain) — never on the thread count — so merging per-chunk
/// partials in chunk order yields the same floating-point result at any
/// thread count.

/// Thread count the next parallel region will use (always >= 1).
size_t ParallelThreadCount();

/// Overrides the pool size; 0 restores automatic sizing (COHERE_THREADS,
/// then hardware_concurrency). Recreates the pool lazily on next use. Not
/// safe to call concurrently with running parallel regions.
void SetParallelThreadCount(size_t count);

/// Runs `body(chunk_begin, chunk_end)` over a partition of [begin, end).
/// Chunks hold at least `grain` indices (the last may be short). The body
/// must tolerate any partition: write disjoint outputs, no order-dependent
/// accumulation across chunk boundaries. Serial (single call over the whole
/// range) when 1 thread is configured, when called from inside another
/// parallel region, or when the range is no larger than `grain`.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Like ParallelFor but with a stable chunk decomposition for reductions:
/// exactly ParallelChunkCount(end - begin, grain) chunks of size `grain`
/// (last short), fixed by the range and grain alone. `body(chunk, b, e)`
/// receives the chunk ordinal so callers can accumulate into per-chunk
/// partials and merge them in chunk order, making the reduction independent
/// of the thread count. With 1 thread the chunks run sequentially in
/// ascending order on the calling thread.
void ParallelForIndexed(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body);

/// Number of chunks ParallelForIndexed uses for a range of `range` indices:
/// ceil(range / max(grain, 1)); 0 for an empty range.
size_t ParallelChunkCount(size_t range, size_t grain);

/// Process-lifetime count of pool tasks that terminated with an exception.
/// Each failed chunk counts once; the first exception per parallel region is
/// additionally rethrown to the submitter. The metrics registry surfaces
/// this as the `parallel.task_failures` counter.
std::uint64_t ParallelTaskFailureCount();

/// Resets the task-failure count (used by MetricsRegistry::ResetAll and
/// tests).
void ResetParallelTaskFailureCount();

}  // namespace cohere

#endif  // COHERE_COMMON_PARALLEL_H_
