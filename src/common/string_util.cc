#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace cohere {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  std::string trimmed(Trim(s));
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("trailing characters in number: '" + trimmed +
                              "'");
  }
  // strtod sets ERANGE on *underflow* too (denormals like 1e-320 come back
  // as the nearest representable value) — those are fine. Only overflow,
  // where the magnitude saturates to HUGE_VAL, is an error.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::ParseError("number out of range: '" + trimmed + "'");
  }
  return value;
}

Result<long long> ParseInt(std::string_view s) {
  std::string trimmed(Trim(s));
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::ParseError("trailing characters in integer: '" + trimmed +
                              "'");
  }
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: '" + trimmed + "'");
  }
  return value;
}

}  // namespace cohere
