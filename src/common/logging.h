#ifndef COHERE_COMMON_LOGGING_H_
#define COHERE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cohere {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Streams a single log line to stderr when destroyed.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the level.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace cohere

#define COHERE_LOG(level)                                                  \
  (static_cast<int>(::cohere::LogLevel::k##level) <                        \
   static_cast<int>(::cohere::GetLogLevel()))                              \
      ? (void)0                                                            \
      : ::cohere::internal::LogMessageVoidify() &                          \
            ::cohere::internal::LogMessage(::cohere::LogLevel::k##level,   \
                                           __FILE__, __LINE__)             \
                .stream()

#endif  // COHERE_COMMON_LOGGING_H_
