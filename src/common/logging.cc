#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace cohere {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  line.push_back('\n');
  std::fputs(line.c_str(), stderr);
}

}  // namespace internal
}  // namespace cohere
