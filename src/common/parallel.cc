#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"

namespace cohere {
namespace {

// Set inside pool workers so nested parallel regions degrade to serial
// execution instead of deadlocking on the (single) pool.
thread_local bool tls_in_pool_worker = false;

// Pool tasks that died with an exception, for the whole process. Surfaced
// as `parallel.task_failures` by the metrics registry (cohere_common cannot
// link cohere_obs, so the registry pulls the value at snapshot time).
std::atomic<std::uint64_t> g_task_failures{0};

size_t AutoThreadCount() {
  if (const char* env = std::getenv("COHERE_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// Persistent pool of `threads - 1` workers; the thread entering Run()
// participates as the final lane. One job runs at a time (Run serializes);
// workers pull chunk ordinals from a shared atomic counter, so load balances
// dynamically while output placement stays fixed by chunk index.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) : threads_(std::max<size_t>(threads, 1)) {
    workers_.reserve(threads_ - 1);
    for (size_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  size_t threads() const { return threads_; }

  void Run(size_t num_chunks, const std::function<void(size_t)>& chunk_fn) {
    if (num_chunks == 0) return;
    std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_fn_ = &chunk_fn;
      num_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      first_error_ = nullptr;
      idle_workers_ = 0;
      ++job_id_;
    }
    work_cv_.notify_all();
    // The caller participates as the final lane. Mark it as in-pool so a
    // nested parallel region inside `chunk_fn` degrades to serial instead of
    // re-entering Run() and self-deadlocking on run_mu_.
    const bool was_in_pool = tls_in_pool_worker;
    tls_in_pool_worker = true;
    DrainChunks(chunk_fn);
    tls_in_pool_worker = was_in_pool;
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return idle_workers_ == workers_.size(); });
    job_fn_ = nullptr;
    if (first_error_ != nullptr) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void WorkerLoop() {
    tls_in_pool_worker = true;
    std::uint64_t seen_job = 0;
    for (;;) {
      const std::function<void(size_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
        if (stop_) return;
        seen_job = job_id_;
        fn = job_fn_;
      }
      DrainChunks(*fn);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (++idle_workers_ == workers_.size()) done_cv_.notify_all();
      }
    }
  }

  void DrainChunks(const std::function<void(size_t)>& fn) {
    for (;;) {
      const size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks_) return;
      try {
        fn(chunk);
      } catch (...) {
        g_task_failures.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
    }
  }

  const size_t threads_;
  std::mutex run_mu_;  // serializes concurrent external Run() callers

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t job_id_ = 0;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t num_chunks_ = 0;
  std::atomic<size_t> next_chunk_{0};
  size_t idle_workers_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

struct PoolState {
  std::mutex mu;
  size_t configured = 0;  // 0 = auto
  std::unique_ptr<ThreadPool> pool;
};

PoolState& State() {
  static PoolState state;
  return state;
}

size_t ResolvedThreadCount(const PoolState& state) {
  return state.configured != 0 ? state.configured : AutoThreadCount();
}

// Returns the pool sized to the current configuration, (re)creating it if
// the requested size changed since the last parallel region.
ThreadPool& GetPool() {
  PoolState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const size_t want = ResolvedThreadCount(state);
  if (state.pool == nullptr || state.pool->threads() != want) {
    state.pool.reset();  // join old workers before spawning replacements
    state.pool = std::make_unique<ThreadPool>(want);
  }
  return *state.pool;
}

}  // namespace

size_t ParallelThreadCount() {
  PoolState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return ResolvedThreadCount(state);
}

void SetParallelThreadCount(size_t count) {
  PoolState& state = State();
  std::unique_ptr<ThreadPool> retired;
  std::lock_guard<std::mutex> lock(state.mu);
  state.configured = count;
  if (state.pool != nullptr &&
      state.pool->threads() != ResolvedThreadCount(state)) {
    retired = std::move(state.pool);  // joined on scope exit
  }
}

size_t ParallelChunkCount(size_t range, size_t grain) {
  if (range == 0) return 0;
  if (grain == 0) grain = 1;
  return (range + grain - 1) / grain;
}

std::uint64_t ParallelTaskFailureCount() {
  return g_task_failures.load(std::memory_order_relaxed);
}

void ResetParallelTaskFailureCount() {
  g_task_failures.store(0, std::memory_order_relaxed);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  if (range <= grain || tls_in_pool_worker || ParallelThreadCount() <= 1) {
    body(begin, end);
    return;
  }
  const size_t chunks = ParallelChunkCount(range, grain);
  GetPool().Run(chunks, [&](size_t chunk) {
    if (COHERE_INJECT_FAULT(fault::kPointParallelDispatch)) {
      throw fault::InjectedFaultError(fault::kPointParallelDispatch);
    }
    const size_t b = begin + chunk * grain;
    const size_t e = std::min(end, b + grain);
    body(b, e);
  });
}

void ParallelForIndexed(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  const size_t chunks = ParallelChunkCount(range, grain);
  if (chunks == 1 || tls_in_pool_worker || ParallelThreadCount() <= 1) {
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      const size_t b = begin + chunk * grain;
      const size_t e = std::min(end, b + grain);
      body(chunk, b, e);
    }
    return;
  }
  GetPool().Run(chunks, [&](size_t chunk) {
    if (COHERE_INJECT_FAULT(fault::kPointParallelDispatch)) {
      throw fault::InjectedFaultError(fault::kPointParallelDispatch);
    }
    const size_t b = begin + chunk * grain;
    const size_t e = std::min(end, b + grain);
    body(chunk, b, e);
  });
}

}  // namespace cohere
