#ifndef COHERE_COMMON_STOPWATCH_H_
#define COHERE_COMMON_STOPWATCH_H_

#include <chrono>

namespace cohere {

/// Monotonic wall-clock stopwatch for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cohere

#endif  // COHERE_COMMON_STOPWATCH_H_
