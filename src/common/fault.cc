#include "common/fault.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"

namespace cohere {
namespace fault {
namespace {

// Number of currently-armed points. Constant-initialized so AnyArmed() is
// safe during static initialization from any TU.
std::atomic<int> g_armed_count{0};

// SplitMix64: deterministic, statistically strong enough for probability
// draws, and stateless per draw so concurrent draws need no lock.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Registry {
  std::mutex mu;
  // Pointers are leaked so call-site statics stay valid forever.
  std::map<std::string, FaultPoint*> points;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Parses the COHERE_FAULT environment spec once, before main. The TU is
// always linked (metrics/parallel reference this file), so env arming works
// for every binary that links cohere_common.
bool ApplyEnvSpec() {
  const char* spec = std::getenv("COHERE_FAULT");
  if (spec == nullptr || spec[0] == '\0') return false;
  const Status status = ArmFromSpec(spec);
  if (!status.ok()) {
    COHERE_LOG(Warning) << "ignoring malformed COHERE_FAULT entry: "
                        << status.ToString();
  }
  return true;
}

const bool g_env_applied = ApplyEnvSpec();

}  // namespace

bool FaultPoint::ShouldFire() {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  const std::uint64_t ordinal = draws_.fetch_add(1, std::memory_order_relaxed);
  if (!always_.load(std::memory_order_relaxed)) {
    const std::uint64_t draw =
        SplitMix64(seed_.load(std::memory_order_relaxed) ^
                   (0x9e3779b97f4a7c15ull * (ordinal + 1)));
    if (draw >= threshold_.load(std::memory_order_relaxed)) return false;
  }
  triggers_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

FaultPoint* Point(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) {
    it = registry.points.emplace(name, new FaultPoint(name)).first;
  }
  return it->second;
}

void Arm(const std::string& name, double probability, std::uint64_t seed) {
  FaultPoint* point = Point(name);
  probability = std::clamp(probability, 0.0, 1.0);
  point->always_.store(probability >= 1.0, std::memory_order_relaxed);
  point->threshold_.store(
      static_cast<std::uint64_t>(
          probability * 18446744073709551615.0 /* 2^64 - 1 */),
      std::memory_order_relaxed);
  point->seed_.store(seed, std::memory_order_relaxed);
  point->draws_.store(0, std::memory_order_relaxed);
  if (!point->armed_.exchange(true, std::memory_order_relaxed)) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return;
  if (it->second->armed_.exchange(false, std::memory_order_relaxed)) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& entry : registry.points) {
    if (entry.second->armed_.exchange(false, std::memory_order_relaxed)) {
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void ResetCounters() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& entry : registry.points) {
    entry.second->draws_.store(0, std::memory_order_relaxed);
    entry.second->triggers_.store(0, std::memory_order_relaxed);
  }
}

std::vector<PointInfo> Points() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<PointInfo> out;
  out.reserve(registry.points.size());
  for (const auto& entry : registry.points) {
    PointInfo info;
    info.name = entry.first;
    info.armed = entry.second->armed();
    info.triggers = entry.second->triggers();
    out.push_back(std::move(info));
  }
  return out;  // std::map iteration is already name-sorted.
}

namespace {

// A spec may only name points code can actually draw from: the wired-in
// catalog, anything already registered programmatically, or the `test.`
// namespace unit tests use for synthetic points. Everything else is a typo
// and must fail loudly instead of arming a point nobody fires.
bool IsArmableName(const std::string& name) {
  if (name.rfind("test.", 0) == 0) return true;
  const std::vector<std::string> known = KnownPoints();
  if (std::binary_search(known.begin(), known.end(), name)) return true;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.points.find(name) != registry.points.end();
}

}  // namespace

Status ArmFromSpec(const std::string& spec) {
  for (const std::string& raw : Split(spec, ',')) {
    const std::string entry(Trim(raw));
    if (entry.empty()) continue;
    const std::vector<std::string> parts = Split(entry, ':');
    if (parts.empty() || Trim(parts[0]).empty() || parts.size() > 3) {
      return Status::InvalidArgument(
          "bad fault spec entry '" + entry +
          "' (want point[:probability[:seed]])");
    }
    const std::string name(Trim(parts[0]));
    if (!IsArmableName(name)) {
      return Status::InvalidArgument(
          "unknown fault point '" + name + "' in '" + entry +
          "' (want a catalog point, a registered point, or a test.* name)");
    }
    double probability = 1.0;
    std::uint64_t seed = 0;
    if (parts.size() >= 2) {
      Result<double> parsed = ParseDouble(Trim(parts[1]));
      if (!parsed.ok() || !(*parsed >= 0.0) || !(*parsed <= 1.0)) {
        return Status::InvalidArgument(
            "bad fault probability in '" + entry + "' (want [0,1])");
      }
      probability = *parsed;
    }
    if (parts.size() == 3) {
      Result<long long> parsed = ParseInt(Trim(parts[2]));
      if (!parsed.ok() || *parsed < 0) {
        return Status::InvalidArgument(
            "bad fault seed in '" + entry + "' (want a non-negative integer)");
      }
      seed = static_cast<std::uint64_t>(*parsed);
    }
    Arm(name, probability, seed);
  }
  return Status::Ok();
}

std::vector<std::string> KnownPoints() {
  std::vector<std::string> points = {
      kPointLoaderIo,       kPointDynamicRefit,   kPointJacobiEigen,
      kPointPowerIteration, kPointSymmetricEigen, kPointSvd,
      kPointParallelDispatch, kPointReductionFit, kPointSnapshotPublish,
      kPointCacheInsertPressure, kPointAdmissionShed,
  };
  std::sort(points.begin(), points.end());
  return points;
}

}  // namespace fault
}  // namespace cohere
