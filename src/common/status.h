#ifndef COHERE_COMMON_STATUS_H_
#define COHERE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace cohere {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kIoError,
  kParseError,
  kNumericalError,
  kInternal,
  kResourceExhausted,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// Library code does not throw; operations that can fail for reasons outside
/// the caller's control (I/O, parsing, numerical non-convergence) return a
/// Status or a Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work at call sites.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    COHERE_CHECK_MSG(!std::get<Status>(data_).ok(),
                     "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    COHERE_CHECK_MSG(ok(), "Result::value() on errored Result");
    return std::get<T>(data_);
  }
  T& value() & {
    COHERE_CHECK_MSG(ok(), "Result::value() on errored Result");
    return std::get<T>(data_);
  }
  T&& value() && {
    COHERE_CHECK_MSG(ok(), "Result::value() on errored Result");
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace cohere

#endif  // COHERE_COMMON_STATUS_H_
