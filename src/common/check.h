#ifndef COHERE_COMMON_CHECK_H_
#define COHERE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Checked-assertion macros for programmer errors (contract violations).
///
/// These are active in all build types: the invariants they guard (matrix
/// shape agreement, index bounds, non-empty inputs) are cheap relative to the
/// numerical kernels and catching a violation late produces far more
/// expensive debugging sessions than the checks cost. Violations abort with a
/// source location; recoverable errors use cohere::Status instead.

#define COHERE_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "COHERE_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define COHERE_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "COHERE_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define COHERE_CHECK_EQ(a, b) COHERE_CHECK((a) == (b))
#define COHERE_CHECK_NE(a, b) COHERE_CHECK((a) != (b))
#define COHERE_CHECK_LT(a, b) COHERE_CHECK((a) < (b))
#define COHERE_CHECK_LE(a, b) COHERE_CHECK((a) <= (b))
#define COHERE_CHECK_GT(a, b) COHERE_CHECK((a) > (b))
#define COHERE_CHECK_GE(a, b) COHERE_CHECK((a) >= (b))

#endif  // COHERE_COMMON_CHECK_H_
