// SSE2 kernel tier: the same across-rows bit-exact strategy as the AVX2
// tier (see kernels_avx2.cc) at half the width — two rows per xmm lane
// group, each lane accumulating its row's terms in sequential j-order.

#include "simd/kernel_tables.h"
#include "simd/kernels_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

namespace cohere {
namespace simd {
namespace internal {
namespace {

inline __m128d Fabs128(__m128d x) {
  const __m128d mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
  return _mm_and_pd(x, mask);
}

// std::max(acc, x) per lane (MAXPD second operand is the NaN fallback).
inline __m128d MaxAccum(__m128d acc, __m128d x) { return _mm_max_pd(x, acc); }

enum class Accum { kL2, kL1, kLinf, kCosine };

template <Accum Kind>
inline void Group2(const double* q, const double* rows, size_t d,
                   double* out) {
  const double* r0 = rows;
  const double* r1 = rows + d;
  __m128d acc = _mm_setzero_pd();
  __m128d nb = _mm_setzero_pd();  // cosine only
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const __m128d a0 = _mm_loadu_pd(r0 + j);
    const __m128d a1 = _mm_loadu_pd(r1 + j);
    const __m128d c0 = _mm_unpacklo_pd(a0, a1);  // {r0[j], r1[j]}
    const __m128d c1 = _mm_unpackhi_pd(a0, a1);  // {r0[j+1], r1[j+1]}
    const __m128d q0 = _mm_set1_pd(q[j]);
    const __m128d q1 = _mm_set1_pd(q[j + 1]);
    if constexpr (Kind == Accum::kCosine) {
      acc = _mm_add_pd(acc, _mm_mul_pd(q0, c0));
      nb = _mm_add_pd(nb, _mm_mul_pd(c0, c0));
      acc = _mm_add_pd(acc, _mm_mul_pd(q1, c1));
      nb = _mm_add_pd(nb, _mm_mul_pd(c1, c1));
    } else {
      const __m128d d0 = _mm_sub_pd(q0, c0);
      const __m128d d1 = _mm_sub_pd(q1, c1);
      if constexpr (Kind == Accum::kL2) {
        acc = _mm_add_pd(acc, _mm_mul_pd(d0, d0));
        acc = _mm_add_pd(acc, _mm_mul_pd(d1, d1));
      } else if constexpr (Kind == Accum::kL1) {
        acc = _mm_add_pd(acc, Fabs128(d0));
        acc = _mm_add_pd(acc, Fabs128(d1));
      } else {
        acc = MaxAccum(acc, Fabs128(d0));
        acc = MaxAccum(acc, Fabs128(d1));
      }
    }
  }
  for (; j < d; ++j) {
    const __m128d col = _mm_set_pd(r1[j], r0[j]);
    const __m128d qv = _mm_set1_pd(q[j]);
    if constexpr (Kind == Accum::kCosine) {
      acc = _mm_add_pd(acc, _mm_mul_pd(qv, col));
      nb = _mm_add_pd(nb, _mm_mul_pd(col, col));
    } else {
      const __m128d diff = _mm_sub_pd(qv, col);
      if constexpr (Kind == Accum::kL2) {
        acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
      } else if constexpr (Kind == Accum::kL1) {
        acc = _mm_add_pd(acc, Fabs128(diff));
      } else {
        acc = MaxAccum(acc, Fabs128(diff));
      }
    }
  }
  if constexpr (Kind == Accum::kCosine) {
    double na = 0.0;
    for (size_t jj = 0; jj < d; ++jj) na += q[jj] * q[jj];
    double dot[2];
    double nbr[2];
    _mm_storeu_pd(dot, acc);
    _mm_storeu_pd(nbr, nb);
    out[0] = CosineFinish(dot[0], na, nbr[0]);
    out[1] = CosineFinish(dot[1], na, nbr[1]);
  } else {
    _mm_storeu_pd(out, acc);
  }
}

template <Accum Kind>
void Block(const double* q, const double* rows, size_t n_rows, size_t d,
           double* out) {
  size_t r = 0;
  for (; r + 2 <= n_rows; r += 2) {
    Group2<Kind>(q, rows + r * d, d, out + r);
  }
  for (; r < n_rows; ++r) {
    const double* row = rows + r * d;
    if constexpr (Kind == Accum::kL2) {
      out[r] = L2Row(q, row, d);
    } else if constexpr (Kind == Accum::kL1) {
      out[r] = L1Row(q, row, d);
    } else if constexpr (Kind == Accum::kLinf) {
      out[r] = LinfRow(q, row, d);
    } else {
      out[r] = CosineRow(q, row, d);
    }
  }
}

void FractionalBlockSse2(const double* q, const double* rows, size_t n_rows,
                         size_t d, double p, double* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = FractionalRow(q, rows + r * d, d, p);
  }
}

void L2MultiBlockSse2(const double* queries, size_t n_queries,
                      const double* rows, size_t n_rows, size_t d,
                      double* out) {
  for (size_t qi = 0; qi < n_queries; ++qi) {
    Block<Accum::kL2>(queries + qi * d, rows, n_rows, d, out + qi * n_rows);
  }
}

enum class VaKind { kL2, kL1, kLinf };

template <VaKind Kind>
inline void VaGroup2(const double* q, const uint8_t* codes, size_t d,
                     const double* boundaries, size_t bstride, double* lb_out,
                     double* ub_out) {
  const uint8_t* c0 = codes;
  const uint8_t* c1 = codes + d;
  __m128d lb = _mm_setzero_pd();
  __m128d ub = _mm_setzero_pd();
  for (size_t j = 0; j < d; ++j) {
    const double* b = boundaries + j * bstride;
    const __m128d lov = _mm_set_pd(b[c1[j]], b[c0[j]]);
    const __m128d hiv = _mm_set_pd(b[c1[j] + 1], b[c0[j] + 1]);
    const __m128d qv = _mm_set1_pd(q[j]);
    const __m128d lt = _mm_cmplt_pd(qv, lov);
    const __m128d gt = _mm_cmpgt_pd(qv, hiv);
    const __m128d lb_j =
        _mm_or_pd(_mm_and_pd(lt, _mm_sub_pd(lov, qv)),
                  _mm_andnot_pd(lt, _mm_and_pd(gt, _mm_sub_pd(qv, hiv))));
    const __m128d f_lo = Fabs128(_mm_sub_pd(qv, lov));
    const __m128d f_hi = Fabs128(_mm_sub_pd(qv, hiv));
    const __m128d ub_j = _mm_max_pd(f_hi, f_lo);
    if constexpr (Kind == VaKind::kL2) {
      lb = _mm_add_pd(lb, _mm_mul_pd(lb_j, lb_j));
      ub = _mm_add_pd(ub, _mm_mul_pd(ub_j, ub_j));
    } else if constexpr (Kind == VaKind::kL1) {
      lb = _mm_add_pd(lb, lb_j);
      ub = _mm_add_pd(ub, ub_j);
    } else {
      lb = MaxAccum(lb, lb_j);
      ub = MaxAccum(ub, ub_j);
    }
  }
  _mm_storeu_pd(lb_out, lb);
  _mm_storeu_pd(ub_out, ub);
}

template <VaKind Kind>
void VaBounds(const double* q, const uint8_t* codes, size_t n_rows, size_t d,
              const double* boundaries, size_t bstride, double* lb,
              double* ub) {
  size_t r = 0;
  for (; r + 2 <= n_rows; r += 2) {
    VaGroup2<Kind>(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
  }
  for (; r < n_rows; ++r) {
    if constexpr (Kind == VaKind::kL2) {
      VaBoundsRowL2(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
    } else if constexpr (Kind == VaKind::kL1) {
      VaBoundsRowL1(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
    } else {
      VaBoundsRowLinf(q, codes + r * d, d, boundaries, bstride, lb + r,
                      ub + r);
    }
  }
}

// ---- fast_math pair kernels: across-dimension accumulation (no FMA in
// SSE2) with two independent partial sums to break the add latency chain.

inline double HSum128(__m128d v) {
  return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
}

double L2PairFastSse2(const double* a, const double* b, size_t d) {
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(a + j + 2), _mm_loadu_pd(b + j + 2));
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(d1, d1));
  }
  for (; j + 2 <= d; j += 2) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j));
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
  }
  double sum = HSum128(_mm_add_pd(acc0, acc1));
  for (; j < d; ++j) {
    const double t = a[j] - b[j];
    sum += t * t;
  }
  return sum;
}

double L1PairFastSse2(const double* a, const double* b, size_t d) {
  __m128d acc = _mm_setzero_pd();
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    acc = _mm_add_pd(
        acc, Fabs128(_mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j))));
  }
  double sum = HSum128(acc);
  for (; j < d; ++j) sum += std::fabs(a[j] - b[j]);
  return sum;
}

double LinfPairFastSse2(const double* a, const double* b, size_t d) {
  __m128d acc = _mm_setzero_pd();
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    acc = _mm_max_pd(
        Fabs128(_mm_sub_pd(_mm_loadu_pd(a + j), _mm_loadu_pd(b + j))), acc);
  }
  double tmp[2];
  _mm_storeu_pd(tmp, acc);
  double best = std::max(tmp[0], tmp[1]);
  for (; j < d; ++j) best = std::max(best, std::fabs(a[j] - b[j]));
  return best;
}

double CosinePairFastSse2(const double* a, const double* b, size_t d) {
  __m128d dot = _mm_setzero_pd();
  __m128d na = _mm_setzero_pd();
  __m128d nb = _mm_setzero_pd();
  size_t j = 0;
  for (; j + 2 <= d; j += 2) {
    const __m128d av = _mm_loadu_pd(a + j);
    const __m128d bv = _mm_loadu_pd(b + j);
    dot = _mm_add_pd(dot, _mm_mul_pd(av, bv));
    na = _mm_add_pd(na, _mm_mul_pd(av, av));
    nb = _mm_add_pd(nb, _mm_mul_pd(bv, bv));
  }
  double dots = HSum128(dot);
  double nas = HSum128(na);
  double nbs = HSum128(nb);
  for (; j < d; ++j) {
    dots += a[j] * b[j];
    nas += a[j] * a[j];
    nbs += b[j] * b[j];
  }
  return CosineFinish(dots, nas, nbs);
}

}  // namespace

const KernelTable& Sse2Kernels() {
  static const KernelTable table = {
      Block<Accum::kL2>,     Block<Accum::kL1>,   Block<Accum::kLinf>,
      Block<Accum::kCosine>, FractionalBlockSse2,
      L2MultiBlockSse2,
      VaBounds<VaKind::kL2>, VaBounds<VaKind::kL1>,
      VaBounds<VaKind::kLinf>,
      L2PairFastSse2,        L1PairFastSse2,      LinfPairFastSse2,
      CosinePairFastSse2,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace cohere

#else  // non-x86: never selected; alias the scalar table so the TU links.

namespace cohere {
namespace simd {
namespace internal {

const KernelTable& Sse2Kernels() { return ScalarKernels(); }

}  // namespace internal
}  // namespace simd
}  // namespace cohere

#endif
