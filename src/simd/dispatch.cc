#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "simd/kernel_tables.h"
#include "simd/kernels.h"
#include "simd/kernels_internal.h"

namespace cohere {
namespace simd {
namespace {

obs::Gauge* DispatchGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("simd.dispatch_level");
  return gauge;
}

Level Detect() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  // The AVX2 translation unit is compiled with -mavx2 -mfma (the fast-math
  // pair kernels use FMA), so selecting it requires both cpuid bits.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level ClampToDetected(Level level) {
  return static_cast<int>(level) <= static_cast<int>(DetectedLevel())
             ? level
             : DetectedLevel();
}

Level ResolveFromEnvironment() {
  Level level = DetectedLevel();
  if (const char* env = std::getenv("COHERE_SIMD")) {
    Level requested;
    if (ParseLevel(env, &requested)) {
      // A request above what the CPU supports clamps down (the tier1 kernel
      // leg forces levels on machines that may lack them).
      level = ClampToDetected(requested);
    }
  }
  return level;
}

// The active level is resolved once (first use) and only changed thereafter
// by SetActiveLevelForTest. Relaxed atomics: dispatch consumers only need
// a consistent enum value, and the kernel tables are immutable statics.
std::atomic<int>& ActiveLevelStorage() {
  static std::atomic<int> active{-1};
  return active;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseLevel(const std::string& text, Level* out) {
  if (text == "scalar") {
    *out = Level::kScalar;
    return true;
  }
  if (text == "sse2") {
    *out = Level::kSse2;
    return true;
  }
  if (text == "avx2") {
    *out = Level::kAvx2;
    return true;
  }
  return false;
}

Level DetectedLevel() {
  static const Level detected = Detect();
  return detected;
}

Level ActiveLevel() {
  std::atomic<int>& storage = ActiveLevelStorage();
  int level = storage.load(std::memory_order_relaxed);
  if (level < 0) {
    const Level resolved = ResolveFromEnvironment();
    level = static_cast<int>(resolved);
    storage.store(level, std::memory_order_relaxed);
    DispatchGauge()->Set(static_cast<double>(level));
  }
  return static_cast<Level>(level);
}

Level SetActiveLevelForTest(Level level) {
  const Level installed = ClampToDetected(level);
  ActiveLevelStorage().store(static_cast<int>(installed),
                             std::memory_order_relaxed);
  DispatchGauge()->Set(static_cast<double>(installed));
  return installed;
}

const KernelTable& KernelsFor(Level level) {
  switch (level) {
    case Level::kSse2:
      return internal::Sse2Kernels();
    case Level::kAvx2:
      return internal::Avx2Kernels();
    case Level::kScalar:
      break;
  }
  return internal::ScalarKernels();
}

const KernelTable& ActiveKernels() { return KernelsFor(ActiveLevel()); }

double L2Squared(const double* a, const double* b, size_t n) {
  return internal::L2Row(a, b, n);
}

void CountKernel(KernelId id, uint64_t calls) {
  if (!obs::MetricsRegistry::Enabled()) return;
  static obs::Counter* counters[static_cast<size_t>(KernelId::kCount)] = {
      obs::MetricsRegistry::Global().GetCounter("simd.kernel.l2_block"),
      obs::MetricsRegistry::Global().GetCounter("simd.kernel.l1_block"),
      obs::MetricsRegistry::Global().GetCounter("simd.kernel.linf_block"),
      obs::MetricsRegistry::Global().GetCounter("simd.kernel.cosine_block"),
      obs::MetricsRegistry::Global().GetCounter(
          "simd.kernel.fractional_block"),
      obs::MetricsRegistry::Global().GetCounter("simd.kernel.multi_block"),
      obs::MetricsRegistry::Global().GetCounter("simd.kernel.va_bounds"),
  };
  counters[static_cast<size_t>(id)]->Increment(calls);
}

}  // namespace simd
}  // namespace cohere
