#include "simd/kernel_tables.h"
#include "simd/kernels_internal.h"

namespace cohere {
namespace simd {
namespace internal {
namespace {

void L2BlockScalar(const double* q, const double* rows, size_t n_rows,
                   size_t d, double* out) {
  for (size_t r = 0; r < n_rows; ++r) out[r] = L2Row(q, rows + r * d, d);
}

void L1BlockScalar(const double* q, const double* rows, size_t n_rows,
                   size_t d, double* out) {
  for (size_t r = 0; r < n_rows; ++r) out[r] = L1Row(q, rows + r * d, d);
}

void LinfBlockScalar(const double* q, const double* rows, size_t n_rows,
                     size_t d, double* out) {
  for (size_t r = 0; r < n_rows; ++r) out[r] = LinfRow(q, rows + r * d, d);
}

void CosineBlockScalar(const double* q, const double* rows, size_t n_rows,
                       size_t d, double* out) {
  for (size_t r = 0; r < n_rows; ++r) out[r] = CosineRow(q, rows + r * d, d);
}

void FractionalBlockScalar(const double* q, const double* rows, size_t n_rows,
                           size_t d, double p, double* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = FractionalRow(q, rows + r * d, d, p);
  }
}

void L2MultiBlockScalar(const double* queries, size_t n_queries,
                        const double* rows, size_t n_rows, size_t d,
                        double* out) {
  for (size_t qi = 0; qi < n_queries; ++qi) {
    L2BlockScalar(queries + qi * d, rows, n_rows, d, out + qi * n_rows);
  }
}

void VaBoundsL2Scalar(const double* q, const uint8_t* codes, size_t n_rows,
                      size_t d, const double* boundaries, size_t bstride,
                      double* lb, double* ub) {
  for (size_t r = 0; r < n_rows; ++r) {
    VaBoundsRowL2(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
  }
}

void VaBoundsL1Scalar(const double* q, const uint8_t* codes, size_t n_rows,
                      size_t d, const double* boundaries, size_t bstride,
                      double* lb, double* ub) {
  for (size_t r = 0; r < n_rows; ++r) {
    VaBoundsRowL1(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
  }
}

void VaBoundsLinfScalar(const double* q, const uint8_t* codes, size_t n_rows,
                        size_t d, const double* boundaries, size_t bstride,
                        double* lb, double* ub) {
  for (size_t r = 0; r < n_rows; ++r) {
    VaBoundsRowLinf(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
  }
}

// Fast pair kernels at the scalar level are simply the exact loops: the
// fast-math contract promises speed where the ISA allows it, not a
// different answer.
double L2PairScalar(const double* a, const double* b, size_t d) {
  return L2Row(a, b, d);
}
double L1PairScalar(const double* a, const double* b, size_t d) {
  return L1Row(a, b, d);
}
double LinfPairScalar(const double* a, const double* b, size_t d) {
  return LinfRow(a, b, d);
}
double CosinePairScalar(const double* a, const double* b, size_t d) {
  return CosineRow(a, b, d);
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      L2BlockScalar,      L1BlockScalar,     LinfBlockScalar,
      CosineBlockScalar,  FractionalBlockScalar,
      L2MultiBlockScalar,
      VaBoundsL2Scalar,   VaBoundsL1Scalar,  VaBoundsLinfScalar,
      L2PairScalar,       L1PairScalar,      LinfPairScalar,
      CosinePairScalar,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace cohere
