#ifndef COHERE_SIMD_DISPATCH_H_
#define COHERE_SIMD_DISPATCH_H_

#include <string>

namespace cohere {
namespace simd {

/// Instruction-set tiers the distance kernels are compiled for. Levels are
/// ordered: a higher level strictly implies the lower ones.
enum class Level : int {
  kScalar = 0,  ///< Portable C++ — the semantic oracle.
  kSse2 = 1,    ///< 128-bit, 2 doubles per lane group.
  kAvx2 = 2,    ///< 256-bit, 4 doubles per lane group (requires FMA too).
};

/// "scalar" | "sse2" | "avx2".
const char* LevelName(Level level);

/// Parses a level name (case-sensitive, as documented for COHERE_SIMD).
/// Returns false on unknown input, leaving `out` untouched.
bool ParseLevel(const std::string& text, Level* out);

/// Best level this CPU supports, probed once (cpuid) on first use.
Level DetectedLevel();

/// The level kernels actually dispatch to: DetectedLevel() clamped by the
/// COHERE_SIMD environment override, resolved once on first use. Mirrored
/// into the `simd.dispatch_level` gauge.
Level ActiveLevel();

/// Overrides the active level for tests and benchmarks. Requests above
/// DetectedLevel() clamp down; returns the level actually installed. Also
/// updates the `simd.dispatch_level` gauge.
Level SetActiveLevelForTest(Level level);

}  // namespace simd
}  // namespace cohere

#endif  // COHERE_SIMD_DISPATCH_H_
