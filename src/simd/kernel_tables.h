#ifndef COHERE_SIMD_KERNEL_TABLES_H_
#define COHERE_SIMD_KERNEL_TABLES_H_

#include "simd/kernels.h"

// Per-level kernel tables, one translation unit each (the SSE2/AVX2 files
// are compiled with the matching -m flags; on non-x86 targets they alias
// the scalar table and DetectedLevel() never reports them).

namespace cohere {
namespace simd {
namespace internal {

const KernelTable& ScalarKernels();
const KernelTable& Sse2Kernels();
const KernelTable& Avx2Kernels();

}  // namespace internal
}  // namespace simd
}  // namespace cohere

#endif  // COHERE_SIMD_KERNEL_TABLES_H_
