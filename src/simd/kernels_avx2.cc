// AVX2 kernel tier.
//
// Bit-exactness strategy: vectorize ACROSS ROWS, four rows per ymm lane
// group. Each lane accumulates exactly one row's terms in the same
// sequential j-order as the scalar oracle, with separate vsub/vmul/vadd
// (never FMA — the scalar baseline is compiled without contraction), so
// every lane reproduces the scalar sum bitwise. MAXPD with the accumulator
// as the second operand replicates std::max(acc, x) including its NaN
// behaviour, and fabs-as-sign-mask matches std::fabs bit for bit, so the
// L-infinity and VA-bound kernels are exact too. Only the `_fast` pair
// kernels (EngineOptions::fast_math) reassociate and use FMA.
//
// This TU is compiled with -mavx2 -mfma (see src/simd/CMakeLists.txt);
// dispatch only selects it when cpuid reports both.

#include "simd/kernel_tables.h"
#include "simd/kernels_internal.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace cohere {
namespace simd {
namespace internal {
namespace {

inline __m256d Fabs256(__m256d x) {
  const __m256d mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  return _mm256_and_pd(x, mask);
}

// Transposes a 4x4 tile: input vector m holds columns j..j+3 of data row m;
// output c[m] holds column j+m of rows 0..3 (lane r = row r).
inline void Transpose4(__m256d a0, __m256d a1, __m256d a2, __m256d a3,
                       __m256d c[4]) {
  const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
  const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
  const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
  const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
  c[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
  c[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
  c[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
  c[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
}

// std::max(acc, x) per lane: MAXPD returns the second operand when either
// input is NaN, and std::max(acc, x) is x iff acc < x — both reduce to
// "x when acc < x, acc otherwise (including any NaN)".
inline __m256d MaxAccum(__m256d acc, __m256d x) {
  return _mm256_max_pd(x, acc);
}

enum class Accum { kL2, kL1, kLinf, kCosine };

template <Accum Kind>
inline void Group4(const double* q, const double* rows, size_t d,
                   double* out) {
  const double* r0 = rows;
  const double* r1 = rows + d;
  const double* r2 = rows + 2 * d;
  const double* r3 = rows + 3 * d;
  __m256d acc = _mm256_setzero_pd();
  __m256d nb = _mm256_setzero_pd();  // cosine only
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    __m256d c[4];
    Transpose4(_mm256_loadu_pd(r0 + j), _mm256_loadu_pd(r1 + j),
               _mm256_loadu_pd(r2 + j), _mm256_loadu_pd(r3 + j), c);
    for (int m = 0; m < 4; ++m) {
      const __m256d qv = _mm256_set1_pd(q[j + static_cast<size_t>(m)]);
      if constexpr (Kind == Accum::kCosine) {
        acc = _mm256_add_pd(acc, _mm256_mul_pd(qv, c[m]));
        nb = _mm256_add_pd(nb, _mm256_mul_pd(c[m], c[m]));
      } else {
        const __m256d diff = _mm256_sub_pd(qv, c[m]);
        if constexpr (Kind == Accum::kL2) {
          acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
        } else if constexpr (Kind == Accum::kL1) {
          acc = _mm256_add_pd(acc, Fabs256(diff));
        } else {
          acc = MaxAccum(acc, Fabs256(diff));
        }
      }
    }
  }
  for (; j < d; ++j) {
    const __m256d col = _mm256_set_pd(r3[j], r2[j], r1[j], r0[j]);
    const __m256d qv = _mm256_set1_pd(q[j]);
    if constexpr (Kind == Accum::kCosine) {
      acc = _mm256_add_pd(acc, _mm256_mul_pd(qv, col));
      nb = _mm256_add_pd(nb, _mm256_mul_pd(col, col));
    } else {
      const __m256d diff = _mm256_sub_pd(qv, col);
      if constexpr (Kind == Accum::kL2) {
        acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
      } else if constexpr (Kind == Accum::kL1) {
        acc = _mm256_add_pd(acc, Fabs256(diff));
      } else {
        acc = MaxAccum(acc, Fabs256(diff));
      }
    }
  }
  if constexpr (Kind == Accum::kCosine) {
    // na depends only on the query; the sequential sum below is exactly the
    // na every scalar per-row evaluation would have computed.
    double na = 0.0;
    for (size_t jj = 0; jj < d; ++jj) na += q[jj] * q[jj];
    double dot[4];
    double nbr[4];
    _mm256_storeu_pd(dot, acc);
    _mm256_storeu_pd(nbr, nb);
    for (int r = 0; r < 4; ++r) out[r] = CosineFinish(dot[r], na, nbr[r]);
  } else {
    _mm256_storeu_pd(out, acc);
  }
}

template <Accum Kind>
void Block(const double* q, const double* rows, size_t n_rows, size_t d,
           double* out) {
  size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    Group4<Kind>(q, rows + r * d, d, out + r);
  }
  for (; r < n_rows; ++r) {
    const double* row = rows + r * d;
    if constexpr (Kind == Accum::kL2) {
      out[r] = L2Row(q, row, d);
    } else if constexpr (Kind == Accum::kL1) {
      out[r] = L1Row(q, row, d);
    } else if constexpr (Kind == Accum::kLinf) {
      out[r] = LinfRow(q, row, d);
    } else {
      out[r] = CosineRow(q, row, d);
    }
  }
}

void FractionalBlockAvx2(const double* q, const double* rows, size_t n_rows,
                         size_t d, double p, double* out) {
  // std::pow has no bit-identical vector form; the fractional metric keeps
  // the scalar loop at every level.
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = FractionalRow(q, rows + r * d, d, p);
  }
}

void L2MultiBlockAvx2(const double* queries, size_t n_queries,
                      const double* rows, size_t n_rows, size_t d,
                      double* out) {
  // Iterate queries over one resident row range: the rows stay hot in cache
  // across the whole query batch.
  for (size_t qi = 0; qi < n_queries; ++qi) {
    Block<Accum::kL2>(queries + qi * d, rows, n_rows, d, out + qi * n_rows);
  }
}

enum class VaKind { kL2, kL1, kLinf };

template <VaKind Kind>
inline void VaGroup4(const double* q, const uint8_t* codes, size_t d,
                     const double* boundaries, size_t bstride, double* lb_out,
                     double* ub_out) {
  const uint8_t* c0 = codes;
  const uint8_t* c1 = codes + d;
  const uint8_t* c2 = codes + 2 * d;
  const uint8_t* c3 = codes + 3 * d;
  __m256d lb = _mm256_setzero_pd();
  __m256d ub = _mm256_setzero_pd();
  for (size_t j = 0; j < d; ++j) {
    const double* b = boundaries + j * bstride;
    const __m256d lov = _mm256_set_pd(b[c3[j]], b[c2[j]], b[c1[j]], b[c0[j]]);
    const __m256d hiv = _mm256_set_pd(b[c3[j] + 1], b[c2[j] + 1],
                                      b[c1[j] + 1], b[c0[j] + 1]);
    const __m256d qv = _mm256_set1_pd(q[j]);
    // Branchless replica of: if (q < lo) lb_j = lo - q; else if (q > hi)
    // lb_j = q - hi; else lb_j = 0 — ordered-quiet compares leave both
    // masks false for a NaN query, matching the scalar fall-through.
    const __m256d lt = _mm256_cmp_pd(qv, lov, _CMP_LT_OQ);
    const __m256d gt = _mm256_cmp_pd(qv, hiv, _CMP_GT_OQ);
    const __m256d lb_j = _mm256_or_pd(
        _mm256_and_pd(lt, _mm256_sub_pd(lov, qv)),
        _mm256_andnot_pd(lt, _mm256_and_pd(gt, _mm256_sub_pd(qv, hiv))));
    const __m256d f_lo = Fabs256(_mm256_sub_pd(qv, lov));
    const __m256d f_hi = Fabs256(_mm256_sub_pd(qv, hiv));
    // std::max(f_lo, f_hi): second MAXPD operand (the NaN fallback) is f_lo.
    const __m256d ub_j = _mm256_max_pd(f_hi, f_lo);
    if constexpr (Kind == VaKind::kL2) {
      lb = _mm256_add_pd(lb, _mm256_mul_pd(lb_j, lb_j));
      ub = _mm256_add_pd(ub, _mm256_mul_pd(ub_j, ub_j));
    } else if constexpr (Kind == VaKind::kL1) {
      lb = _mm256_add_pd(lb, lb_j);
      ub = _mm256_add_pd(ub, ub_j);
    } else {
      lb = MaxAccum(lb, lb_j);
      ub = MaxAccum(ub, ub_j);
    }
  }
  _mm256_storeu_pd(lb_out, lb);
  _mm256_storeu_pd(ub_out, ub);
}

template <VaKind Kind>
void VaBounds(const double* q, const uint8_t* codes, size_t n_rows, size_t d,
              const double* boundaries, size_t bstride, double* lb,
              double* ub) {
  size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    VaGroup4<Kind>(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
  }
  for (; r < n_rows; ++r) {
    if constexpr (Kind == VaKind::kL2) {
      VaBoundsRowL2(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
    } else if constexpr (Kind == VaKind::kL1) {
      VaBoundsRowL1(q, codes + r * d, d, boundaries, bstride, lb + r, ub + r);
    } else {
      VaBoundsRowLinf(q, codes + r * d, d, boundaries, bstride, lb + r,
                      ub + r);
    }
  }
}

// ---- fast_math pair kernels: across-dimension accumulation with FMA ----

inline double HSum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

double L2PairFastAvx2(const double* a, const double* b, size_t d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j + 4), _mm256_loadu_pd(b + j + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; j + 4 <= d; j += 4) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
  }
  double sum = HSum256(_mm256_add_pd(acc0, acc1));
  for (; j < d; ++j) {
    const double t = a[j] - b[j];
    sum += t * t;
  }
  return sum;
}

double L1PairFastAvx2(const double* a, const double* b, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    acc = _mm256_add_pd(
        acc, Fabs256(_mm256_sub_pd(_mm256_loadu_pd(a + j),
                                   _mm256_loadu_pd(b + j))));
  }
  double sum = HSum256(acc);
  for (; j < d; ++j) sum += std::fabs(a[j] - b[j]);
  return sum;
}

double LinfPairFastAvx2(const double* a, const double* b, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    acc = _mm256_max_pd(
        Fabs256(_mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j))),
        acc);
  }
  double tmp[4];
  _mm256_storeu_pd(tmp, acc);
  double best = std::max(std::max(tmp[0], tmp[1]), std::max(tmp[2], tmp[3]));
  for (; j < d; ++j) best = std::max(best, std::fabs(a[j] - b[j]));
  return best;
}

double CosinePairFastAvx2(const double* a, const double* b, size_t d) {
  __m256d dot = _mm256_setzero_pd();
  __m256d na = _mm256_setzero_pd();
  __m256d nb = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const __m256d av = _mm256_loadu_pd(a + j);
    const __m256d bv = _mm256_loadu_pd(b + j);
    dot = _mm256_fmadd_pd(av, bv, dot);
    na = _mm256_fmadd_pd(av, av, na);
    nb = _mm256_fmadd_pd(bv, bv, nb);
  }
  double dots = HSum256(dot);
  double nas = HSum256(na);
  double nbs = HSum256(nb);
  for (; j < d; ++j) {
    dots += a[j] * b[j];
    nas += a[j] * a[j];
    nbs += b[j] * b[j];
  }
  return CosineFinish(dots, nas, nbs);
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      Block<Accum::kL2>,     Block<Accum::kL1>,   Block<Accum::kLinf>,
      Block<Accum::kCosine>, FractionalBlockAvx2,
      L2MultiBlockAvx2,
      VaBounds<VaKind::kL2>, VaBounds<VaKind::kL1>,
      VaBounds<VaKind::kLinf>,
      L2PairFastAvx2,        L1PairFastAvx2,      LinfPairFastAvx2,
      CosinePairFastAvx2,
  };
  return table;
}

}  // namespace internal
}  // namespace simd
}  // namespace cohere

#else  // non-x86: never selected; alias the scalar table so the TU links.

namespace cohere {
namespace simd {
namespace internal {

const KernelTable& Avx2Kernels() { return ScalarKernels(); }

}  // namespace internal
}  // namespace simd
}  // namespace cohere

#endif
