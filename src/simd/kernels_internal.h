#ifndef COHERE_SIMD_KERNELS_INTERNAL_H_
#define COHERE_SIMD_KERNELS_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

// Scalar per-row reference loops shared by every kernel translation unit.
//
// These are the semantic oracle: they repeat the historical Metric loops
// operation for operation (same subtraction order, same sequential
// accumulation, std::max / std::fabs semantics), and the SIMD row-group
// implementations must match them bitwise lane by lane. They are `static`
// so each per-level TU compiles its own copy — the arithmetic is identical
// under every -m flag used here because nothing below is reassociable and
// the build never enables FP contraction for these TUs.

namespace cohere {
namespace simd {
namespace internal {

static inline double L2Row(const double* q, const double* row, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double t = q[j] - row[j];
    sum += t * t;
  }
  return sum;
}

static inline double L1Row(const double* q, const double* row, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) sum += std::fabs(q[j] - row[j]);
  return sum;
}

static inline double LinfRow(const double* q, const double* row, size_t d) {
  double best = 0.0;
  for (size_t j = 0; j < d; ++j) {
    best = std::max(best, std::fabs(q[j] - row[j]));
  }
  return best;
}

static inline double CosineRow(const double* q, const double* row, size_t d) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t j = 0; j < d; ++j) {
    dot += q[j] * row[j];
    na += q[j] * q[j];
    nb += row[j] * row[j];
  }
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return 1.0;
  const double sim = dot / std::sqrt(na * nb);
  return 1.0 - std::clamp(sim, -1.0, 1.0);
}

/// Finishing step shared with the vectorized cosine kernel: applies the
/// zero-vector rules and the clamp to per-row (dot, nb) accumulators.
static inline double CosineFinish(double dot, double na, double nb) {
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return 1.0;
  const double sim = dot / std::sqrt(na * nb);
  return 1.0 - std::clamp(sim, -1.0, 1.0);
}

static inline double FractionalRow(const double* q, const double* row,
                                   size_t d, double p) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    sum += std::pow(std::fabs(q[j] - row[j]), p);
  }
  return sum;
}

// VA-file per-row bound loops, one per decomposable metric kind; these
// mirror the historical VaFileIndex phase-1 loop exactly.

static inline void VaBoundsRowL2(const double* q, const uint8_t* code,
                                 size_t d, const double* boundaries,
                                 size_t bstride, double* lb_out,
                                 double* ub_out) {
  double lb = 0.0;
  double ub = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double* b = boundaries + j * bstride;
    const double lo = b[code[j]];
    const double hi = b[code[j] + 1];
    const double qj = q[j];
    double lb_j = 0.0;
    if (qj < lo) {
      lb_j = lo - qj;
    } else if (qj > hi) {
      lb_j = qj - hi;
    }
    const double ub_j = std::max(std::fabs(qj - lo), std::fabs(qj - hi));
    lb += lb_j * lb_j;
    ub += ub_j * ub_j;
  }
  *lb_out = lb;
  *ub_out = ub;
}

static inline void VaBoundsRowL1(const double* q, const uint8_t* code,
                                 size_t d, const double* boundaries,
                                 size_t bstride, double* lb_out,
                                 double* ub_out) {
  double lb = 0.0;
  double ub = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double* b = boundaries + j * bstride;
    const double lo = b[code[j]];
    const double hi = b[code[j] + 1];
    const double qj = q[j];
    double lb_j = 0.0;
    if (qj < lo) {
      lb_j = lo - qj;
    } else if (qj > hi) {
      lb_j = qj - hi;
    }
    const double ub_j = std::max(std::fabs(qj - lo), std::fabs(qj - hi));
    lb += lb_j;
    ub += ub_j;
  }
  *lb_out = lb;
  *ub_out = ub;
}

static inline void VaBoundsRowLinf(const double* q, const uint8_t* code,
                                   size_t d, const double* boundaries,
                                   size_t bstride, double* lb_out,
                                   double* ub_out) {
  double lb = 0.0;
  double ub = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double* b = boundaries + j * bstride;
    const double lo = b[code[j]];
    const double hi = b[code[j] + 1];
    const double qj = q[j];
    double lb_j = 0.0;
    if (qj < lo) {
      lb_j = lo - qj;
    } else if (qj > hi) {
      lb_j = qj - hi;
    }
    const double ub_j = std::max(std::fabs(qj - lo), std::fabs(qj - hi));
    lb = std::max(lb, lb_j);
    ub = std::max(ub, ub_j);
  }
  *lb_out = lb;
  *ub_out = ub;
}

}  // namespace internal
}  // namespace simd
}  // namespace cohere

#endif  // COHERE_SIMD_KERNELS_INTERNAL_H_
