#ifndef COHERE_SIMD_KERNELS_H_
#define COHERE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace cohere {
namespace simd {

/// Runtime-dispatched distance kernels over blocked row storage.
///
/// Block kernels compute per-row results from one query against `n_rows`
/// rows stored contiguously at stride `d` (the BlockedMatrix layout; a plain
/// row-major Matrix qualifies too). `out` receives one value per row.
///
/// Bit-exactness contract: for every kernel except the `_fast` pair entries,
/// out[r] is BITWISE IDENTICAL to the scalar reference loop over row r at
/// every dispatch level. The SIMD implementations achieve this by
/// vectorizing ACROSS ROWS — each SIMD lane accumulates one row's terms in
/// the same sequential j-order as the scalar loop (no FMA, no reassociation)
/// — so the golden-hash serving tests pass unmodified whatever the CPU.
/// One carve-out: a NaN result is guaranteed to be NaN, but its sign and
/// payload are unspecified (IEEE leaves NaN selection to the
/// implementation, and compilers may commute vector add/mul operands,
/// changing which NaN operand the hardware propagates). Finite values, ±0
/// and ±inf are always bit-strict.
/// The `_fast` pair kernels trade that contract away (striped accumulators,
/// FMA where available) and back the opt-in EngineOptions::fast_math mode.
struct KernelTable {
  /// out[r] = sum_j (q[j] - row[j])^2  (comparable L2).
  void (*l2_block)(const double* q, const double* rows, size_t n_rows,
                   size_t d, double* out);
  /// out[r] = sum_j |q[j] - row[j]|  (L1).
  void (*l1_block)(const double* q, const double* rows, size_t n_rows,
                   size_t d, double* out);
  /// out[r] = max_j |q[j] - row[j]|  (L-infinity).
  void (*linf_block)(const double* q, const double* rows, size_t n_rows,
                     size_t d, double* out);
  /// out[r] = cosine distance with the metric's zero-vector rules applied.
  void (*cosine_block)(const double* q, const double* rows, size_t n_rows,
                       size_t d, double* out);
  /// out[r] = sum_j |q[j] - row[j]|^p. Scalar at every level: std::pow has
  /// no bit-identical vector form, so the fractional metric's win comes from
  /// the blocked layout only.
  void (*fractional_block)(const double* q, const double* rows, size_t n_rows,
                           size_t d, double p, double* out);

  /// Multi-query-vs-block scan: out[qi * n_rows + r] = kernel(query qi,
  /// row r). Queries are rows of `queries` at stride `d`. Iterates queries
  /// over one resident block so the rows are loaded from cache once per
  /// batch instead of once per query; per-query results match the
  /// corresponding single-query block kernel bitwise.
  void (*l2_multi_block)(const double* queries, size_t n_queries,
                         const double* rows, size_t n_rows, size_t d,
                         double* out);

  /// VA-file lower/upper bound scan over a flattened boundary table.
  /// `codes` holds n_rows contiguous rows of d uint8 cell codes; dimension
  /// j's cells+1 boundaries live at `boundaries + j * bstride`. Per row:
  /// lb/ub accumulate the per-dimension cell bounds in the metric's
  /// comparable form, bitwise identical to the scalar reference.
  void (*va_bounds_l2)(const double* q, const uint8_t* codes, size_t n_rows,
                       size_t d, const double* boundaries, size_t bstride,
                       double* lb, double* ub);
  void (*va_bounds_l1)(const double* q, const uint8_t* codes, size_t n_rows,
                       size_t d, const double* boundaries, size_t bstride,
                       double* lb, double* ub);
  void (*va_bounds_linf)(const double* q, const uint8_t* codes, size_t n_rows,
                         size_t d, const double* boundaries, size_t bstride,
                         double* lb, double* ub);

  /// Single-pair kernels for EngineOptions::fast_math: vectorized across
  /// dimensions with striped partial accumulators (and FMA on AVX2), so the
  /// summation order differs from the scalar oracle — results are within
  /// normal rounding slack but NOT bitwise stable across levels.
  double (*l2_pair_fast)(const double* a, const double* b, size_t d);
  double (*l1_pair_fast)(const double* a, const double* b, size_t d);
  double (*linf_pair_fast)(const double* a, const double* b, size_t d);
  double (*cosine_pair_fast)(const double* a, const double* b, size_t d);
};

/// Kernel table for an explicit level (parity tests iterate these).
const KernelTable& KernelsFor(Level level);

/// Kernel table for ActiveLevel().
const KernelTable& ActiveKernels();

/// Scalar-oracle squared-L2 between two raw vectors: the shared entry point
/// private distance loops (k-means seeding/assignment, ...) dedupe onto.
/// Sequential accumulation — bitwise equal to the historical private loops.
double L2Squared(const double* a, const double* b, size_t n);

/// Per-kernel invocation counters (`simd.kernel.<name>` in the metrics
/// registry). `calls` lets a scan count a whole span of block calls in one
/// striped-atomic add.
enum class KernelId : int {
  kL2Block = 0,
  kL1Block,
  kLinfBlock,
  kCosineBlock,
  kFractionalBlock,
  kMultiBlock,
  kVaBounds,
  kCount,
};
void CountKernel(KernelId id, uint64_t calls = 1);

}  // namespace simd
}  // namespace cohere

#endif  // COHERE_SIMD_KERNELS_H_
