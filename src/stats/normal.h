#ifndef COHERE_STATS_NORMAL_H_
#define COHERE_STATS_NORMAL_H_

namespace cohere {

/// Standard normal density at `z`.
double NormalPdf(double z);

/// Standard normal cumulative distribution Phi(z), computed from erf.
/// This is the Phi(.) of the paper's coherence-probability formula.
double NormalCdf(double z);

/// Inverse of NormalCdf on (0, 1); returns +/-infinity at the endpoints.
/// Uses the Acklam rational approximation refined by one Halley step,
/// accurate to ~1e-15 over the full open interval.
double NormalQuantile(double p);

/// Probability mass of a standard normal within `z` standard deviations of
/// the mean: 2*Phi(z) - 1 for z >= 0. This is exactly the paper's
/// CoherenceProbability transform of a coherence factor.
double TwoSidedNormalMass(double z);

}  // namespace cohere

#endif  // COHERE_STATS_NORMAL_H_
