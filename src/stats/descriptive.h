#ifndef COHERE_STATS_DESCRIPTIVE_H_
#define COHERE_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

#include "linalg/vector.h"

namespace cohere {

/// Arithmetic mean; 0 for an empty input.
double Mean(const Vector& values);

/// Population variance (divide by N); 0 for inputs of size < 1.
double PopulationVariance(const Vector& values);

/// Sample variance (divide by N-1); 0 for inputs of size < 2.
double SampleVariance(const Vector& values);

/// Square root of SampleVariance.
double SampleStdDev(const Vector& values);

/// Root-mean-square of the values about an explicit center (the paper's
/// sigma(e_i, X) uses center = 0).
double RootMeanSquareAbout(const Vector& values, double center);

/// Linear-interpolated quantile for q in [0, 1]; input need not be sorted.
double Quantile(const Vector& values, double q);

/// Median (Quantile at 0.5).
double Median(const Vector& values);

/// Minimum / maximum; inputs must be non-empty.
double Min(const Vector& values);
double Max(const Vector& values);

/// One-pass summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
};

/// Computes a Summary; an empty input yields a zeroed Summary.
Summary Summarize(const Vector& values);

}  // namespace cohere

#endif  // COHERE_STATS_DESCRIPTIVE_H_
