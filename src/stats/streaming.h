#ifndef COHERE_STATS_STREAMING_H_
#define COHERE_STATS_STREAMING_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Single-pass mean/covariance accumulator (multivariate Welford) with a
/// numerically stable parallel merge.
///
/// Lets the dynamic-index path maintain fit statistics incrementally instead
/// of re-reading all records, and matches the batch CovarianceMatrix /
/// ColumnMeans results to floating-point accuracy.
class StreamingMoments {
 public:
  StreamingMoments() = default;
  /// Accumulator over `dims`-dimensional observations.
  explicit StreamingMoments(size_t dims);

  size_t dims() const { return mean_.size(); }
  size_t count() const { return count_; }

  /// Adds one observation (size must match dims).
  void Add(const Vector& x);

  /// Merges another accumulator over the same dimensionality (Chan et al.
  /// parallel update).
  void Merge(const StreamingMoments& other);

  /// Current mean (zero vector while empty).
  Vector Mean() const { return mean_; }

  /// Population covariance (divide by N; zero matrix while count < 1).
  Matrix Covariance() const;

  /// Population variances (the covariance diagonal, cheaper).
  Vector Variances() const;

 private:
  size_t count_ = 0;
  Vector mean_;
  // Sum of outer products of deviations: M2 = sum (x - mean)(x - mean)^T,
  // maintained with the Welford update.
  Matrix m2_;
};

}  // namespace cohere

#endif  // COHERE_STATS_STREAMING_H_
