#include "stats/rng.h"

#include <numeric>

namespace cohere {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Vector Rng::UniformVector(size_t size, double lo, double hi) {
  Vector out(size);
  for (size_t i = 0; i < size; ++i) out[i] = Uniform(lo, hi);
  return out;
}

Vector Rng::GaussianVector(size_t size) {
  Vector out(size);
  for (size_t i = 0; i < size; ++i) out[i] = Gaussian();
  return out;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t population,
                                                  size_t count) {
  COHERE_CHECK_LE(count, population);
  std::vector<size_t> all(population);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher-Yates: shuffle only the prefix we need.
  for (size_t i = 0; i < count; ++i) {
    const size_t j = static_cast<size_t>(UniformInt(
        static_cast<int64_t>(i), static_cast<int64_t>(population - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

}  // namespace cohere
