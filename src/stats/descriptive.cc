#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cohere {

double Mean(const Vector& values) {
  if (values.empty()) return 0.0;
  return values.Sum() / static_cast<double>(values.size());
}

double PopulationVariance(const Vector& values) {
  const size_t n = values.size();
  if (n < 1) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(n);
}

double SampleVariance(const Vector& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(n - 1);
}

double SampleStdDev(const Vector& values) {
  return std::sqrt(SampleVariance(values));
}

double RootMeanSquareAbout(const Vector& values, double center) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) {
    const double d = v - center;
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(values.size()));
}

double Quantile(const Vector& values, double q) {
  COHERE_CHECK(!values.empty());
  COHERE_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(const Vector& values) { return Quantile(values, 0.5); }

double Min(const Vector& values) {
  COHERE_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const Vector& values) {
  COHERE_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

Summary Summarize(const Vector& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = Mean(values);
  s.stddev = SampleStdDev(values);
  s.min = Min(values);
  s.max = Max(values);
  return s;
}

}  // namespace cohere
