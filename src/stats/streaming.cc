#include "stats/streaming.h"

#include "common/check.h"

namespace cohere {

StreamingMoments::StreamingMoments(size_t dims)
    : mean_(dims), m2_(dims, dims) {}

void StreamingMoments::Add(const Vector& x) {
  COHERE_CHECK_EQ(x.size(), dims());
  ++count_;
  const double inv_n = 1.0 / static_cast<double>(count_);
  const size_t d = dims();

  // delta = x - old_mean; mean += delta / n; M2 += delta (x - new_mean)^T.
  Vector delta(d);
  for (size_t j = 0; j < d; ++j) {
    delta[j] = x[j] - mean_[j];
    mean_[j] += delta[j] * inv_n;
  }
  for (size_t i = 0; i < d; ++i) {
    double* row = m2_.RowPtr(i);
    const double di = delta[i];
    for (size_t j = 0; j < d; ++j) {
      row[j] += di * (x[j] - mean_[j]);
    }
  }
}

void StreamingMoments::Merge(const StreamingMoments& other) {
  COHERE_CHECK_EQ(dims(), other.dims());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const size_t d = dims();
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;

  Vector delta(d);
  for (size_t j = 0; j < d; ++j) delta[j] = other.mean_[j] - mean_[j];

  for (size_t i = 0; i < d; ++i) {
    double* row = m2_.RowPtr(i);
    const double* other_row = other.m2_.RowPtr(i);
    const double di = delta[i];
    for (size_t j = 0; j < d; ++j) {
      row[j] += other_row[j] + di * delta[j] * na * nb / n;
    }
  }
  for (size_t j = 0; j < d; ++j) mean_[j] += delta[j] * nb / n;
  count_ += other.count_;
}

Matrix StreamingMoments::Covariance() const {
  Matrix out(dims(), dims());
  if (count_ < 1) return out;
  const double inv_n = 1.0 / static_cast<double>(count_);
  for (size_t i = 0; i < dims(); ++i) {
    const double* src = m2_.RowPtr(i);
    double* dst = out.RowPtr(i);
    for (size_t j = 0; j < dims(); ++j) dst[j] = src[j] * inv_n;
  }
  return out;
}

Vector StreamingMoments::Variances() const {
  Vector out(dims());
  if (count_ < 1) return out;
  const double inv_n = 1.0 / static_cast<double>(count_);
  for (size_t j = 0; j < dims(); ++j) out[j] = m2_.At(j, j) * inv_n;
  return out;
}

}  // namespace cohere
