#ifndef COHERE_STATS_COVARIANCE_H_
#define COHERE_STATS_COVARIANCE_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Column means of a data matrix (records in rows).
Vector ColumnMeans(const Matrix& data);

/// Column-wise population standard deviations.
Vector ColumnStdDevs(const Matrix& data);

/// d x d covariance matrix of an n x d data matrix (population normalization,
/// divide by N, matching the paper's definition where the trace equals the
/// mean squared deviation from the centroid).
Matrix CovarianceMatrix(const Matrix& data);

/// d x d correlation matrix. Columns with zero variance produce zero
/// off-diagonal entries and a unit diagonal (the paper's recommendation is to
/// discard such columns before analysis; keeping them inert is the safe
/// default here).
Matrix CorrelationMatrix(const Matrix& data);

/// Pearson correlation of two equally-sized samples; 0 if either side has
/// zero variance.
double PearsonCorrelation(const Vector& a, const Vector& b);

/// Spearman rank correlation (Pearson on average ranks, handling ties).
double SpearmanCorrelation(const Vector& a, const Vector& b);

/// Average ranks (1-based; ties share the mean of their positions).
Vector AverageRanks(const Vector& values);

}  // namespace cohere

#endif  // COHERE_STATS_COVARIANCE_H_
