#ifndef COHERE_STATS_RNG_H_
#define COHERE_STATS_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"
#include "linalg/vector.h"

namespace cohere {

/// Seedable random source used by all generators in the library.
///
/// Wraps std::mt19937_64 with the sampling helpers the data generators need.
/// Every experiment harness seeds its Rng explicitly so figures and tables
/// are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, stddev 1) variate.
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// Vector of iid uniform variates in [lo, hi).
  Vector UniformVector(size_t size, double lo = 0.0, double hi = 1.0);

  /// Vector of iid standard normal variates.
  Vector GaussianVector(size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(
          UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws `count` distinct indices uniformly from [0, population).
  std::vector<size_t> SampleWithoutReplacement(size_t population, size_t count);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cohere

#endif  // COHERE_STATS_RNG_H_
