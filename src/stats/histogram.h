#ifndef COHERE_STATS_HISTOGRAM_H_
#define COHERE_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace cohere {

/// Fixed-width-bin histogram over a closed range.
///
/// Finite values below the range land in the first bin, above it in the
/// last bin (clamping keeps totals conserved for the contribution plots of
/// Figure 1). Non-finite inputs are routed explicitly: +inf counts in the
/// last bin, -inf in the first, and NaN in a separate `non_finite` counter
/// — converting a non-finite double to an integer bin index is undefined
/// behavior, so it must never reach the cast.
class Histogram {
 public:
  /// Creates `num_bins` equal bins spanning [lo, hi]; requires hi > lo and
  /// num_bins >= 1.
  Histogram(double lo, double hi, size_t num_bins);

  /// Adds one observation.
  void Add(double value);
  /// Adds every component of `values`.
  void AddAll(const Vector& values);

  size_t num_bins() const { return counts_.size(); }
  /// Binned observations (includes clamped +/-inf, excludes NaN).
  size_t total_count() const { return total_; }
  /// NaN observations excluded from the bins.
  size_t non_finite_count() const { return non_finite_; }
  /// Count in bin `b`.
  size_t Count(size_t b) const;
  /// Fraction of observations in bin `b` (0 when empty).
  double Fraction(size_t b) const;
  /// Center of bin `b`.
  double BinCenter(size_t b) const;

  /// Quantile estimate for q in [0, 1], linearly interpolated inside the
  /// bin holding the requested rank (observations are assumed uniform
  /// within a bin). Returns NaN while the histogram is empty.
  double Quantile(double q) const;

  /// Renders an ASCII bar chart, one bin per line.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  size_t non_finite_ = 0;
};

}  // namespace cohere

#endif  // COHERE_STATS_HISTOGRAM_H_
