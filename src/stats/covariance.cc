#include "stats/covariance.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace cohere {

Vector ColumnMeans(const Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Vector means(d);
  if (n == 0) return means;
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.RowPtr(i);
    for (size_t j = 0; j < d; ++j) means[j] += row[j];
  }
  means /= static_cast<double>(n);
  return means;
}

Vector ColumnStdDevs(const Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Vector out(d);
  if (n == 0) return out;
  const Vector means = ColumnMeans(data);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      const double dev = row[j] - means[j];
      out[j] += dev * dev;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    out[j] = std::sqrt(out[j] / static_cast<double>(n));
  }
  return out;
}

Matrix CovarianceMatrix(const Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  COHERE_CHECK_GT(n, 0u);
  const Vector means = ColumnMeans(data);

  // Center into a scratch matrix, then form (1/N) X^T X with the rank-1
  // kernel; this keeps the inner loops contiguous. The centering is
  // element-wise (disjoint rows, exact under any partition) and the product
  // parallelizes inside MultiplyTransposeA; the mean pass stays serial — it
  // is O(nd) against the product's O(nd^2), and keeping it sequential keeps
  // the accumulation order (and thus the result) independent of threading.
  Matrix centered = data;
  ParallelFor(0, n, /*grain=*/64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* row = centered.RowPtr(i);
      for (size_t j = 0; j < d; ++j) row[j] -= means[j];
    }
  });
  Matrix cov = MultiplyTransposeA(centered, centered);
  cov *= 1.0 / static_cast<double>(n);
  // Re-symmetrize to scrub accumulation asymmetry.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) {
      const double avg = 0.5 * (cov.At(i, j) + cov.At(j, i));
      cov.At(i, j) = avg;
      cov.At(j, i) = avg;
    }
  }
  return cov;
}

Matrix CorrelationMatrix(const Matrix& data) {
  Matrix cov = CovarianceMatrix(data);
  const size_t d = cov.rows();
  Vector inv_std(d);
  size_t zero_variance = 0;
  for (size_t j = 0; j < d; ++j) {
    const double var = cov.At(j, j);
    if (var > 0.0) {
      inv_std[j] = 1.0 / std::sqrt(var);
    } else {
      // A constant attribute has no correlation with anything; mapping its
      // inverse deviation to 0 zeroes its off-diagonal row/column (the
      // diagonal is pinned to 1 below), which keeps the matrix finite and
      // positive semi-definite but silently drops the attribute from the
      // analysis — worth one warning per process.
      inv_std[j] = 0.0;
      ++zero_variance;
    }
  }
  if (zero_variance > 0) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      COHERE_LOG(Warning)
          << "CorrelationMatrix: " << zero_variance << " of " << d
          << " attributes have zero variance; they are studentized to zero "
             "and carry no correlation signal (warning logged once)";
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (i == j) {
        cov.At(i, j) = 1.0;
      } else {
        cov.At(i, j) *= inv_std[i] * inv_std[j];
      }
    }
  }
  return cov;
}

double PearsonCorrelation(const Vector& a, const Vector& b) {
  COHERE_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n == 0) return 0.0;
  const double mean_a = a.Sum() / static_cast<double>(n);
  const double mean_b = b.Sum() / static_cast<double>(n);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

Vector AverageRanks(const Vector& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&values](size_t x, size_t y) {
    return values[x] < values[y];
  });
  Vector ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const Vector& a, const Vector& b) {
  COHERE_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

}  // namespace cohere
