#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"

namespace cohere {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  COHERE_CHECK_GT(hi, lo);
  COHERE_CHECK_GE(num_bins, 1u);
  bin_width_ = (hi - lo) / static_cast<double>(num_bins);
}

void Histogram::Add(double value) {
  // Route non-finite inputs before any float->int conversion: casting a
  // non-finite (or out-of-range) double to an integer is UB.
  if (std::isnan(value)) {
    ++non_finite_;
    return;
  }
  size_t bin;
  if (std::isinf(value)) {
    bin = value > 0 ? counts_.size() - 1 : 0;
  } else {
    const double pos = std::floor((value - lo_) / bin_width_);
    if (pos <= 0.0) {
      bin = 0;
    } else if (pos >= static_cast<double>(counts_.size()) - 1.0) {
      bin = counts_.size() - 1;
    } else {
      bin = static_cast<size_t>(pos);
    }
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::AddAll(const Vector& values) {
  for (double v : values) Add(v);
}

size_t Histogram::Count(size_t b) const {
  COHERE_CHECK_LT(b, counts_.size());
  return counts_[b];
}

double Histogram::Fraction(size_t b) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(b)) / static_cast<double>(total_);
}

double Histogram::BinCenter(size_t b) const {
  COHERE_CHECK_LT(b, counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * bin_width_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  size_t cumulative = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const size_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= target) {
      const double within = std::clamp(
          (target - static_cast<double>(cumulative)) /
              static_cast<double>(counts_[b]),
          0.0, 1.0);
      return lo_ + (static_cast<double>(b) + within) * bin_width_;
    }
    cumulative = next;
  }
  // Unreachable for total_ > 0, but keep a defined answer.
  return hi_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  size_t max_count = 0;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char buf[64];
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(buf, sizeof(buf), "%10.4g | ", BinCenter(b));
    out += buf;
    // Bar width in floating point: the integer product
    // counts_[b] * max_width overflows size_t for large counts.
    const size_t width =
        max_count == 0
            ? 0
            : static_cast<size_t>(static_cast<double>(counts_[b]) *
                                  static_cast<double>(max_width) /
                                  static_cast<double>(max_count));
    out.append(width, '#');
    std::snprintf(buf, sizeof(buf), " %zu\n", counts_[b]);
    out += buf;
  }
  return out;
}

}  // namespace cohere
