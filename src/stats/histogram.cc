#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace cohere {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  COHERE_CHECK_GT(hi, lo);
  COHERE_CHECK_GE(num_bins, 1u);
  bin_width_ = (hi - lo) / static_cast<double>(num_bins);
}

void Histogram::Add(double value) {
  double pos = (value - lo_) / bin_width_;
  long long bin = static_cast<long long>(std::floor(pos));
  bin = std::clamp(bin, 0LL, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(const Vector& values) {
  for (double v : values) Add(v);
}

size_t Histogram::Count(size_t b) const {
  COHERE_CHECK_LT(b, counts_.size());
  return counts_[b];
}

double Histogram::Fraction(size_t b) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(b)) / static_cast<double>(total_);
}

double Histogram::BinCenter(size_t b) const {
  COHERE_CHECK_LT(b, counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * bin_width_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  size_t max_count = 0;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char buf[64];
  for (size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(buf, sizeof(buf), "%10.4g | ", BinCenter(b));
    out += buf;
    const size_t width =
        max_count == 0 ? 0 : counts_[b] * max_width / max_count;
    out.append(width, '#');
    std::snprintf(buf, sizeof(buf), " %zu\n", counts_[b]);
    out += buf;
  }
  return out;
}

}  // namespace cohere
