#include "index/vp_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cohere {

VpTreeIndex::VpTreeIndex(std::shared_ptr<const BlockedMatrix> rows,
                         const Metric* metric, size_t leaf_size)
    : rows_(std::move(rows)), metric_(metric), leaf_size_(leaf_size) {
  COHERE_CHECK(rows_ != nullptr);
  COHERE_CHECK(metric_ != nullptr);
  COHERE_CHECK_MSG(metric_->IsTrueMetric(),
                   "vp-tree pruning requires a true metric");
  COHERE_CHECK_GE(leaf_size_, 1u);
  order_.resize(rows_->rows());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!order_.empty()) BuildNode(0, order_.size());
}

VpTreeIndex::VpTreeIndex(Matrix data, const Metric* metric, size_t leaf_size)
    : VpTreeIndex(std::make_shared<BlockedMatrix>(data), metric, leaf_size) {}

double VpTreeIndex::RowDistance(const Vector& query, size_t row) const {
  return metric_->Distance(query.data(), rows_->RowPtr(row), rows_->cols());
}

size_t VpTreeIndex::BuildNode(size_t begin, size_t end) {
  const size_t node_index = nodes_.size();
  nodes_.emplace_back();

  if (end - begin <= leaf_size_) {
    Node& leaf = nodes_[node_index];
    leaf.begin = begin;
    leaf.end = end;
    return node_index;
  }

  // Vantage point: the first point of the range (the permutation left by
  // previous splits makes this effectively arbitrary).
  const size_t vantage = order_[begin];
  const Vector vantage_point = rows_->Row(vantage);

  // Distances of the remaining points to the vantage point.
  const size_t rest_begin = begin + 1;
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(end - rest_begin);
  for (size_t i = rest_begin; i < end; ++i) {
    scored.emplace_back(RowDistance(vantage_point, order_[i]), order_[i]);
  }
  const size_t mid = scored.size() / 2;
  std::nth_element(scored.begin(),
                   scored.begin() + static_cast<ptrdiff_t>(mid),
                   scored.end());
  const double radius = scored[mid].first;

  // Rewrite the range: [inside half][outside half].
  size_t write = rest_begin;
  for (const auto& [dist, row] : scored) {
    if (dist <= radius) order_[write++] = row;
  }
  const size_t inside_end = write;
  for (const auto& [dist, row] : scored) {
    if (dist > radius) order_[write++] = row;
  }
  COHERE_CHECK_EQ(write, end);

  size_t inside = kInvalid;
  size_t outside = kInvalid;
  if (inside_end > rest_begin) inside = BuildNode(rest_begin, inside_end);
  if (end > inside_end) outside = BuildNode(inside_end, end);

  Node& node = nodes_[node_index];
  node.vantage = vantage;
  node.radius = radius;
  node.inside = inside;
  node.outside = outside;
  // A node with a vantage but no children still must not look like a leaf;
  // mark the vantage-only payload through the begin/end range.
  node.begin = begin;
  node.end = begin + 1;
  return node_index;
}

void VpTreeIndex::Search(size_t node_index, const Vector& query, size_t k,
                         size_t skip_index, KnnCollector* collector,
                         QueryStats* stats, QueryControl* control) const {
  // ShouldStop latches, so once it fires every pending recursive call
  // returns immediately and the partial collector surfaces.
  if (control != nullptr && control->ShouldStop()) return;
  const Node& node = nodes_[node_index];
  if (stats != nullptr) ++stats->nodes_visited;

  if (node.IsLeaf()) {
    for (size_t i = node.begin; i < node.end; ++i) {
      const size_t row = order_[i];
      if (row == skip_index) continue;
      const double dist = RowDistance(query, row);
      if (stats != nullptr) ++stats->distance_evaluations;
      collector->Offer(row, dist);
    }
    return;
  }

  const double dist_to_vantage = RowDistance(query, node.vantage);
  if (stats != nullptr) ++stats->distance_evaluations;
  if (node.vantage != skip_index) {
    collector->Offer(node.vantage, dist_to_vantage);
  }

  // Visit the half the query falls in first, then the other half only if
  // the shell |dist - radius| could still contain a closer point.
  const bool inside_first = dist_to_vantage <= node.radius;
  const size_t first = inside_first ? node.inside : node.outside;
  const size_t second = inside_first ? node.outside : node.inside;

  if (first != kInvalid) {
    Search(first, query, k, skip_index, collector, stats, control);
  }
  if (second != kInvalid) {
    const double shell_gap = inside_first ? dist_to_vantage - node.radius
                                          : node.radius - dist_to_vantage;
    // shell_gap is negative here; the distance from the query to the other
    // region is |dist_to_vantage - radius|.
    const double boundary = std::fabs(shell_gap);
    if (!collector->Full() || boundary <= collector->Threshold()) {
      Search(second, query, k, skip_index, collector, stats, control);
    }
  }
}

std::vector<Neighbor> VpTreeIndex::QueryImpl(const Vector& query, size_t k,
                                             size_t skip_index,
                                             QueryStats* stats,
                                             QueryControl* control) const {
  COHERE_CHECK_EQ(query.size(), rows_->cols());
  KnnCollector collector(k);
  if (!nodes_.empty() && k > 0) {
    Search(0, query, k, skip_index, &collector, stats, control);
  }
  return collector.Take();
}

}  // namespace cohere
