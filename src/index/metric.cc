#include "index/metric.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "simd/kernels.h"

namespace cohere {
namespace {

class EuclideanMetric final : public Metric {
 public:
  explicit EuclideanMetric(bool fast_math) : fast_math_(fast_math) {}
  using Metric::ComparableDistance;
  using Metric::Distance;
  double Distance(const double* a, const double* b, size_t n) const override {
    return std::sqrt(ComparableDistance(a, b, n));
  }
  double ComparableDistance(const double* a, const double* b,
                            size_t n) const override {
    if (fast_math_) return simd::ActiveKernels().l2_pair_fast(a, b, n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    return sum;
  }
  void ComparableDistanceBlock(const double* q, const double* rows,
                               size_t n_rows, size_t n,
                               double* out) const override {
    simd::CountKernel(simd::KernelId::kL2Block);
    simd::ActiveKernels().l2_block(q, rows, n_rows, n, out);
  }
  void DistanceBlock(const double* q, const double* rows, size_t n_rows,
                     size_t n, double* out) const override {
    ComparableDistanceBlock(q, rows, n_rows, n, out);
    for (size_t r = 0; r < n_rows; ++r) out[r] = std::sqrt(out[r]);
  }
  double ComparableToActual(double comparable) const override {
    return std::sqrt(comparable);
  }
  MetricKind kind() const override { return MetricKind::kEuclidean; }
  std::string name() const override { return "euclidean"; }

 private:
  bool fast_math_;
};

class ManhattanMetric final : public Metric {
 public:
  explicit ManhattanMetric(bool fast_math) : fast_math_(fast_math) {}
  using Metric::Distance;
  double Distance(const double* a, const double* b, size_t n) const override {
    if (fast_math_) return simd::ActiveKernels().l1_pair_fast(a, b, n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += std::fabs(a[i] - b[i]);
    return sum;
  }
  void ComparableDistanceBlock(const double* q, const double* rows,
                               size_t n_rows, size_t n,
                               double* out) const override {
    simd::CountKernel(simd::KernelId::kL1Block);
    simd::ActiveKernels().l1_block(q, rows, n_rows, n, out);
  }
  void DistanceBlock(const double* q, const double* rows, size_t n_rows,
                     size_t n, double* out) const override {
    ComparableDistanceBlock(q, rows, n_rows, n, out);
  }
  MetricKind kind() const override { return MetricKind::kManhattan; }
  std::string name() const override { return "manhattan"; }

 private:
  bool fast_math_;
};

class ChebyshevMetric final : public Metric {
 public:
  explicit ChebyshevMetric(bool fast_math) : fast_math_(fast_math) {}
  using Metric::Distance;
  double Distance(const double* a, const double* b, size_t n) const override {
    if (fast_math_) return simd::ActiveKernels().linf_pair_fast(a, b, n);
    double best = 0.0;
    for (size_t i = 0; i < n; ++i) {
      best = std::max(best, std::fabs(a[i] - b[i]));
    }
    return best;
  }
  void ComparableDistanceBlock(const double* q, const double* rows,
                               size_t n_rows, size_t n,
                               double* out) const override {
    simd::CountKernel(simd::KernelId::kLinfBlock);
    simd::ActiveKernels().linf_block(q, rows, n_rows, n, out);
  }
  void DistanceBlock(const double* q, const double* rows, size_t n_rows,
                     size_t n, double* out) const override {
    ComparableDistanceBlock(q, rows, n_rows, n, out);
  }
  MetricKind kind() const override { return MetricKind::kChebyshev; }
  std::string name() const override { return "chebyshev"; }

 private:
  bool fast_math_;
};

class FractionalMetric final : public Metric {
 public:
  explicit FractionalMetric(double p) : p_(p) {
    COHERE_CHECK(p > 0.0 && p < 1.0);
  }
  using Metric::ComparableDistance;
  using Metric::Distance;
  double Distance(const double* a, const double* b, size_t n) const override {
    return std::pow(ComparableDistance(a, b, n), 1.0 / p_);
  }
  double ComparableDistance(const double* a, const double* b,
                            size_t n) const override {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += std::pow(std::fabs(a[i] - b[i]), p_);
    }
    return sum;
  }
  void ComparableDistanceBlock(const double* q, const double* rows,
                               size_t n_rows, size_t n,
                               double* out) const override {
    // Scalar at every dispatch level (std::pow); still counted so work
    // attribution stays uniform across metrics.
    simd::CountKernel(simd::KernelId::kFractionalBlock);
    simd::ActiveKernels().fractional_block(q, rows, n_rows, n, p_, out);
  }
  void DistanceBlock(const double* q, const double* rows, size_t n_rows,
                     size_t n, double* out) const override {
    ComparableDistanceBlock(q, rows, n_rows, n, out);
    for (size_t r = 0; r < n_rows; ++r) {
      out[r] = std::pow(out[r], 1.0 / p_);
    }
  }
  double ComparableToActual(double comparable) const override {
    return std::pow(comparable, 1.0 / p_);
  }
  MetricKind kind() const override { return MetricKind::kFractional; }
  std::string name() const override {
    // %g trims the trailing zeros std::to_string would keep, so sweep and
    // report output reads "fractional_l0.5", not "fractional_l0.500000".
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fractional_l%g", p_);
    return buf;
  }
  bool IsTrueMetric() const override { return false; }

 private:
  double p_;
};

class CosineMetric final : public Metric {
 public:
  explicit CosineMetric(bool fast_math) : fast_math_(fast_math) {}
  using Metric::Distance;
  double Distance(const double* a, const double* b, size_t n) const override {
    if (fast_math_) return simd::ActiveKernels().cosine_pair_fast(a, b, n);
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    // Zero vectors have no direction. Two of them are indistinguishable
    // (D = 0, preserving D(x, x) = 0); against a nonzero vector the
    // similarity is taken as 0 (D = 1).
    if (na == 0.0 && nb == 0.0) return 0.0;
    if (na == 0.0 || nb == 0.0) return 1.0;
    const double sim = dot / std::sqrt(na * nb);
    return 1.0 - std::clamp(sim, -1.0, 1.0);
  }
  void ComparableDistanceBlock(const double* q, const double* rows,
                               size_t n_rows, size_t n,
                               double* out) const override {
    simd::CountKernel(simd::KernelId::kCosineBlock);
    simd::ActiveKernels().cosine_block(q, rows, n_rows, n, out);
  }
  void DistanceBlock(const double* q, const double* rows, size_t n_rows,
                     size_t n, double* out) const override {
    ComparableDistanceBlock(q, rows, n_rows, n, out);
  }
  MetricKind kind() const override { return MetricKind::kCosine; }
  std::string name() const override { return "cosine"; }
  bool IsTrueMetric() const override { return false; }

 private:
  bool fast_math_;
};

}  // namespace

std::unique_ptr<Metric> MakeMetric(MetricKind kind, double p, bool fast_math) {
  switch (kind) {
    case MetricKind::kEuclidean:
      return std::make_unique<EuclideanMetric>(fast_math);
    case MetricKind::kManhattan:
      return std::make_unique<ManhattanMetric>(fast_math);
    case MetricKind::kChebyshev:
      return std::make_unique<ChebyshevMetric>(fast_math);
    case MetricKind::kFractional:
      return std::make_unique<FractionalMetric>(p);
    case MetricKind::kCosine:
      return std::make_unique<CosineMetric>(fast_math);
  }
  COHERE_CHECK_MSG(false, "unknown metric kind");
  return nullptr;
}

}  // namespace cohere
