#ifndef COHERE_INDEX_RSTAR_TREE_H_
#define COHERE_INDEX_RSTAR_TREE_H_

#include <memory>
#include <vector>

#include "index/knn.h"
#include "linalg/blocked_matrix.h"

namespace cohere {

/// R*-tree (Beckmann et al., SIGMOD 1990) — the classic dynamic spatial
/// index family the paper's introduction motivates from (Guttman's R-tree
/// and its descendants), with the R* improvements: ChooseSubtree by minimum
/// overlap enlargement at the leaf level, the margin-driven split with the
/// minimum-overlap distribution, and forced reinsertion on first overflow
/// per level.
///
/// k-NN queries run best-first on MBR minimum distances. Like every
/// partition index, its pruning collapses in high dimensionality (MBRs
/// overlap everywhere), which bench_index_pruning demonstrates alongside
/// the kd-tree and VA-file.
class RStarTreeIndex final : public KnnIndex {
 public:
  /// Builds by inserting the shard-owned blocked rows one at a time (the
  /// rows are shared, not copied). `metric` must outlive the index and be a
  /// true metric with monotone per-dimension contributions (L1/L2/Linf).
  /// `max_entries` is the node capacity M (>= 4); the minimum fill m is 40%
  /// of M.
  RStarTreeIndex(std::shared_ptr<const BlockedMatrix> rows,
                 const Metric* metric, size_t max_entries = 16);
  /// Convenience: copies `data` into a privately owned BlockedMatrix.
  RStarTreeIndex(Matrix data, const Metric* metric, size_t max_entries = 16);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  size_t size() const override { return rows_->rows(); }
  size_t dims() const override { return rows_->cols(); }
  std::string name() const override { return "rstar_tree"; }

  /// Number of allocated tree nodes (structure probes in tests).
  size_t NumNodes() const;
  /// Tree height (1 for a single leaf).
  size_t Height() const { return height_; }

  /// Validates the tree invariants (entry counts, MBR containment, every
  /// row present exactly once); used by the test suite.
  bool CheckInvariants() const;

 private:
  struct Entry {
    Vector lo;            // MBR lower corner
    Vector hi;            // MBR upper corner
    size_t child = kInvalid;  // node id for internal entries
    size_t row = kInvalid;    // data row for leaf entries
  };
  struct Node {
    bool leaf = true;
    size_t level = 0;  // 0 = leaf level
    std::vector<Entry> entries;
  };
  static constexpr size_t kInvalid = static_cast<size_t>(-1);

  // --- geometry helpers ---
  static double Area(const Vector& lo, const Vector& hi);
  static double Margin(const Vector& lo, const Vector& hi);
  static double Overlap(const Vector& alo, const Vector& ahi,
                        const Vector& blo, const Vector& bhi);
  static void Extend(Vector* lo, Vector* hi, const Entry& e);
  static double EnlargedArea(const Vector& lo, const Vector& hi,
                             const Entry& e);
  double MinComparableDistance(const Vector& query, const Vector& lo,
                               const Vector& hi, Vector* scratch) const;

  Entry MakeLeafEntry(size_t row) const;
  Entry MakeNodeEntry(size_t node_id) const;

  // --- insertion machinery ---
  void Insert(size_t row);
  void InsertEntry(const Entry& entry, size_t target_level,
                   std::vector<bool>* reinserted_at_level);
  size_t ChooseSubtree(const Entry& entry, size_t target_level,
                       std::vector<size_t>* path) const;
  /// Handles an overflowing node: forced reinsert on first overflow at this
  /// level during one insertion, split otherwise. Propagates up the path.
  void OverflowTreatment(size_t node_id, std::vector<size_t>* path,
                         std::vector<bool>* reinserted_at_level);
  void SplitNode(size_t node_id, std::vector<size_t>* path);
  void AdjustPathMbrs(const std::vector<size_t>& path);

  bool CheckNode(size_t node_id, size_t expected_level,
                 std::vector<size_t>* row_counts) const;

  std::shared_ptr<const BlockedMatrix> rows_;
  const Metric* metric_;
  size_t max_entries_;
  size_t min_entries_;
  std::vector<Node> nodes_;
  size_t root_ = kInvalid;
  size_t height_ = 1;
};

}  // namespace cohere

#endif  // COHERE_INDEX_RSTAR_TREE_H_
