#include "index/linear_scan.h"

#include "common/check.h"

namespace cohere {

LinearScanIndex::LinearScanIndex(Matrix data, const Metric* metric)
    : data_(std::move(data)), metric_(metric) {
  COHERE_CHECK(metric_ != nullptr);
}

std::vector<Neighbor> LinearScanIndex::QueryImpl(const Vector& query, size_t k,
                                                 size_t skip_index,
                                                 QueryStats* stats,
                                                 QueryControl* control) const {
  COHERE_CHECK_EQ(query.size(), data_.cols());
  KnnCollector collector(k);
  const double* q = query.data();
  const size_t d = data_.cols();
  const size_t n = data_.rows();
  if (control == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (i == skip_index) continue;
      // Raw-buffer distance straight against row storage: the innermost
      // scan loop performs no copies.
      const double comparable =
          metric_->ComparableDistance(q, data_.RowPtr(i), d);
      collector.Offer(i, comparable);
    }
    if (stats != nullptr) {
      // The scan evaluates every non-skipped row; count in one add instead
      // of a pointer-indirect increment inside the hot loop.
      stats->distance_evaluations += n - (skip_index < n ? 1 : 0);
    }
  } else {
    size_t evaluated = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i == skip_index) continue;
      if (control->ShouldStop()) break;
      const double comparable =
          metric_->ComparableDistance(q, data_.RowPtr(i), d);
      collector.Offer(i, comparable);
      ++evaluated;
    }
    if (stats != nullptr) stats->distance_evaluations += evaluated;
  }
  std::vector<Neighbor> out = collector.Take();
  for (Neighbor& n : out) {
    n.distance = metric_->ComparableToActual(n.distance);
  }
  return out;
}

}  // namespace cohere
