#include "index/linear_scan.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "simd/kernels.h"

namespace cohere {
namespace {

// Rows per ComparableDistanceBlock call. A span is many SIMD row-groups:
// large enough that the per-call virtual dispatch and kernel counter cost
// vanish, small enough that the distance buffer lives on the stack.
constexpr size_t kScanSpan = 256;

// Queries per multi-query chunk in the batch fan-out. Matches the base
// QueryBatch grain so chunk boundaries (and thus parallel scheduling
// behaviour) are unchanged.
constexpr size_t kBatchGrain = 4;

}  // namespace

LinearScanIndex::LinearScanIndex(std::shared_ptr<const BlockedMatrix> rows,
                                 const Metric* metric)
    : rows_(std::move(rows)), metric_(metric) {
  COHERE_CHECK(rows_ != nullptr);
  COHERE_CHECK(metric_ != nullptr);
}

LinearScanIndex::LinearScanIndex(Matrix data, const Metric* metric)
    : LinearScanIndex(std::make_shared<BlockedMatrix>(data), metric) {}

std::vector<Neighbor> LinearScanIndex::QueryImpl(const Vector& query, size_t k,
                                                 size_t skip_index,
                                                 QueryStats* stats,
                                                 QueryControl* control) const {
  COHERE_CHECK_EQ(query.size(), rows_->cols());
  KnnCollector collector(k);
  const double* q = query.data();
  const size_t d = rows_->cols();
  const size_t n = rows_->rows();
  if (control == nullptr) {
    // Span-at-a-time scan: one block-kernel call per kScanSpan rows, then a
    // sequential offer loop — the same (index, distance) stream the
    // historical per-row loop produced, bit for bit.
    double dist[kScanSpan];
    for (size_t base = 0; base < n; base += kScanSpan) {
      const size_t span = std::min(kScanSpan, n - base);
      metric_->ComparableDistanceBlock(q, rows_->RowPtr(base), span, d, dist);
      if (skip_index - base < span) {
        for (size_t r = 0; r < span; ++r) {
          if (base + r == skip_index) continue;
          collector.Offer(base + r, dist[r]);
        }
      } else {
        for (size_t r = 0; r < span; ++r) collector.Offer(base + r, dist[r]);
      }
    }
    if (stats != nullptr) {
      // The scan evaluates every non-skipped row; count in one add instead
      // of a pointer-indirect increment inside the hot loop.
      stats->distance_evaluations += n - (skip_index < n ? 1 : 0);
    }
  } else {
    // Deadline/cancel path: per-row evaluation preserves the exact
    // truncation semantics (one control check per distance).
    size_t evaluated = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i == skip_index) continue;
      if (control->ShouldStop()) break;
      const double comparable =
          metric_->ComparableDistance(q, rows_->RowPtr(i), d);
      collector.Offer(i, comparable);
      ++evaluated;
    }
    if (stats != nullptr) stats->distance_evaluations += evaluated;
  }
  std::vector<Neighbor> out = collector.Take();
  for (Neighbor& n : out) {
    n.distance = metric_->ComparableToActual(n.distance);
  }
  return out;
}

std::vector<std::vector<Neighbor>> LinearScanIndex::QueryBatch(
    const Matrix& queries, size_t k, QueryStats* stats) const {
  // The multi-query scan answers a whole chunk per pass over the data, so
  // it cannot attribute latency to individual queries; while the registry
  // (or tracer) is recording, take the base per-query instrumented path —
  // the answers are bitwise identical either way.
  if (obs::MetricsRegistry::Enabled() || obs::Tracer::Enabled() ||
      metric_->kind() != MetricKind::kEuclidean) {
    return KnnIndex::QueryBatch(queries, k, stats);
  }

  const size_t n_queries = queries.rows();
  std::vector<std::vector<Neighbor>> out(n_queries);
  if (n_queries == 0) return out;
  COHERE_CHECK_EQ(queries.cols(), dims());

  const size_t d = rows_->cols();
  const size_t n = rows_->rows();
  const auto& kernels = simd::ActiveKernels();
  const size_t chunks = ParallelChunkCount(n_queries, kBatchGrain);
  std::vector<QueryStats> partial(stats != nullptr ? chunks : 0);
  ParallelForIndexed(0, n_queries, kBatchGrain,
                     [&](size_t chunk, size_t begin, size_t end) {
    const size_t chunk_queries = end - begin;
    std::vector<KnnCollector> collectors(chunk_queries, KnnCollector(k));
    double dist[kBatchGrain * kScanSpan];
    for (size_t base = 0; base < n; base += kScanSpan) {
      const size_t span = std::min(kScanSpan, n - base);
      // One resident span serves every query of the chunk before the scan
      // moves on — the block is loaded from memory once per chunk.
      kernels.l2_multi_block(queries.RowPtr(begin), chunk_queries,
                             rows_->RowPtr(base), span, d, dist);
      for (size_t qi = 0; qi < chunk_queries; ++qi) {
        const double* row_dist = dist + qi * span;
        KnnCollector& collector = collectors[qi];
        for (size_t r = 0; r < span; ++r) {
          collector.Offer(base + r, row_dist[r]);
        }
      }
    }
    simd::CountKernel(simd::KernelId::kMultiBlock,
                      (n + kScanSpan - 1) / kScanSpan);
    for (size_t qi = 0; qi < chunk_queries; ++qi) {
      std::vector<Neighbor> result = collectors[qi].Take();
      for (Neighbor& nb : result) {
        nb.distance = metric_->ComparableToActual(nb.distance);
      }
      out[begin + qi] = std::move(result);
    }
    if (stats != nullptr) {
      partial[chunk].distance_evaluations += chunk_queries * n;
    }
  });
  if (stats != nullptr) {
    for (const QueryStats& p : partial) stats->MergeFrom(p);
  }
  return out;
}

}  // namespace cohere
