#ifndef COHERE_INDEX_KNN_H_
#define COHERE_INDEX_KNN_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "index/metric.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {
namespace obs {
struct QueryPathMetrics;
}  // namespace obs
}  // namespace cohere

namespace cohere {

/// One answer of a k-nearest-neighbor query.
struct Neighbor {
  size_t index = 0;    ///< Row index into the indexed data matrix.
  double distance = 0; ///< True (not comparable-form) distance.

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Work counters for one query; the indexing experiments in the paper's
/// motivation are about exactly these numbers (how much of the data an
/// index must touch in high dimensionality).
struct QueryStats {
  size_t distance_evaluations = 0;  ///< Full-precision distance computations.
  size_t nodes_visited = 0;         ///< Tree nodes or VA cells examined.
  size_t candidates_refined = 0;    ///< Exact refinements after filtering.

  /// Accumulates another query's counters (batch paths merge per-thread
  /// stats through this).
  void MergeFrom(const QueryStats& other) {
    distance_evaluations += other.distance_evaluations;
    nodes_visited += other.nodes_visited;
    candidates_refined += other.candidates_refined;
  }
};

/// Interface of all k-NN engines over a fixed set of points.
class KnnIndex {
 public:
  virtual ~KnnIndex() = default;

  /// Returns the `k` nearest rows to `query`, nearest first, with ties
  /// broken by row index. Fewer than `k` results are returned only when the
  /// index holds fewer than `k` points. `skip_index` (when not kNoSkip)
  /// excludes one row — used by leave-one-out evaluation to exclude the
  /// query point itself.
  ///
  /// This is the instrumented entry point: it forwards to the backend's
  /// QueryImpl and, while obs::MetricsRegistry::Enabled(), publishes the
  /// per-query latency and work counters to the global registry under
  /// `index.<name()>.*`. The registry totals accumulate exactly the
  /// `QueryStats` fields the `stats` out-param receives.
  std::vector<Neighbor> Query(const Vector& query, size_t k,
                              size_t skip_index, QueryStats* stats) const;

  std::vector<Neighbor> Query(const Vector& query, size_t k) const {
    return Query(query, k, kNoSkip, nullptr);
  }

  /// Answers one query per row of `queries`, fanning the rows across the
  /// shared thread pool (see common/parallel.h). Entry i of the result is
  /// exactly Query(queries.Row(i), k): queries are independent, so the
  /// parallel path is bitwise identical to the serial one. When `stats` is
  /// non-null the per-thread counters are merged into it.
  virtual std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& queries, size_t k, QueryStats* stats = nullptr) const;

  /// Number of indexed points.
  virtual size_t size() const = 0;
  /// Dimensionality of the indexed points.
  virtual size_t dims() const = 0;
  virtual std::string name() const = 0;

  static constexpr size_t kNoSkip = static_cast<size_t>(-1);

 protected:
  /// Backend hook behind Query(): answers one query, accumulating work
  /// counters into `stats` when it is non-null.
  virtual std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                          size_t skip_index,
                                          QueryStats* stats) const = 0;

 private:
  /// Registry metric bundle for this backend, resolved from name() on the
  /// first instrumented query and cached (concurrent first queries resolve
  /// to the same process-lifetime bundle, so the race is benign).
  const obs::QueryPathMetrics& Instrument() const;

  /// Interned "index.<name()>.query" span name, lazily resolved and cached
  /// the same way as the metric bundle (interned names have process
  /// lifetime, so the race is equally benign).
  const char* TraceName() const;

  mutable std::atomic<const obs::QueryPathMetrics*> instrument_{nullptr};
  mutable std::atomic<const char*> trace_name_{nullptr};
};

/// Bounded max-heap collecting the k best candidates during a scan.
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// Offers a candidate; keeps only the k smallest distances.
  void Offer(size_t index, double distance);

  /// Current k-th best distance, or +infinity while fewer than k collected.
  double Threshold() const;

  /// True once k candidates have been collected.
  bool Full() const { return heap_.size() >= k_; }

  /// Extracts results sorted by (distance, index) ascending.
  std::vector<Neighbor> Take();

 private:
  size_t k_;
  // Max-heap on (distance, index) so the worst candidate is on top.
  std::vector<Neighbor> heap_;
};

}  // namespace cohere

#endif  // COHERE_INDEX_KNN_H_
