#ifndef COHERE_INDEX_KNN_H_
#define COHERE_INDEX_KNN_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "index/metric.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {
namespace obs {
struct QueryPathMetrics;
}  // namespace obs
}  // namespace cohere

namespace cohere {

class ServingCore;

/// One answer of a k-nearest-neighbor query.
struct Neighbor {
  size_t index = 0;    ///< Row index into the indexed data matrix.
  double distance = 0; ///< True (not comparable-form) distance.

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Work counters for one query; the indexing experiments in the paper's
/// motivation are about exactly these numbers (how much of the data an
/// index must touch in high dimensionality).
struct QueryStats {
  size_t distance_evaluations = 0;  ///< Full-precision distance computations.
  size_t nodes_visited = 0;         ///< Tree nodes or VA cells examined.
  size_t candidates_refined = 0;    ///< Exact refinements after filtering.
  /// True when the query stopped early (deadline or cancellation) and the
  /// results are the best found so far rather than the exact answer.
  bool truncated = false;
  /// Brownout degradation applied by admission control: 0 = full-fidelity,
  /// 1 = re-rank candidate cap, 2 = probes forced down to one shard. Always
  /// 0 when admission is disabled (the default).
  size_t brownout_level = 0;
  /// Merged re-rank candidates discarded by the brownout cap (work the
  /// query would have done at full fidelity).
  size_t rerank_dropped = 0;

  /// Accumulates another query's counters (batch paths merge per-thread
  /// stats through this).
  void MergeFrom(const QueryStats& other) {
    distance_evaluations += other.distance_evaluations;
    nodes_visited += other.nodes_visited;
    candidates_refined += other.candidates_refined;
    truncated = truncated || other.truncated;
    if (other.brownout_level > brownout_level) {
      brownout_level = other.brownout_level;
    }
    rerank_dropped += other.rerank_dropped;
  }
};

/// Cooperative cancellation flag. The caller keeps the token alive for the
/// duration of the query (or batch) and may flip it from any thread; running
/// queries notice at their next control check and return partial results
/// with `QueryStats::truncated` set.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query execution limits. Default-constructed limits are inactive and
/// leave the query path byte-identical to the pre-deadline code.
struct QueryLimits {
  /// Wall-clock budget for the query in microseconds; <= 0 (and NaN)
  /// disables the deadline, and fractional budgets round *up* to a whole
  /// microsecond (see QueryControl::DeadlineMicros), so a tiny positive
  /// budget is short but never born expired. For QueryBatch the budget
  /// covers the whole batch (one absolute deadline shared by every row).
  double deadline_us = 0.0;
  /// Optional external cancellation; not owned, may be null.
  const CancelToken* cancel = nullptr;

  bool active() const { return deadline_us > 0.0 || cancel != nullptr; }
};

/// Countdown-gated deadline/cancel checker threaded through QueryImpl. The
/// clock is only consulted every kCheckInterval calls, so the per-distance
/// cost is a decrement and branch; a query therefore overshoots its
/// deadline by at most one check interval of work. Not thread-safe: each
/// query (batch row) gets its own instance.
class QueryControl {
 public:
  /// Distance evaluations between clock reads.
  static constexpr size_t kCheckInterval = 64;

  QueryControl(const CancelToken* cancel,
               std::chrono::steady_clock::time_point deadline,
               bool has_deadline)
      : cancel_(cancel), deadline_(deadline), has_deadline_(has_deadline) {}

  /// Builds a control whose deadline is `limits.deadline_us` from now.
  static QueryControl FromLimits(const QueryLimits& limits);

  /// Microsecond budget after rounding: fractional budgets round *up* (a
  /// sub-microsecond deadline is short but never already expired when
  /// granted), non-positive and NaN budgets clamp to 0 (inactive), and
  /// astronomically large budgets clamp below the steady_clock overflow
  /// horizon. Every deadline the library arms goes through this.
  static long long DeadlineMicros(double deadline_us);

  /// True when the query should stop now. Latches: once stopped, every
  /// subsequent call returns true immediately. The first call always
  /// evaluates the clock so sub-interval deadlines fire deterministically.
  bool ShouldStop() {
    if (stopped_) return true;
    if (--countdown_ > 0) return false;
    countdown_ = kCheckInterval;
    if (cancel_ != nullptr && cancel_->Cancelled()) {
      stopped_ = true;
    } else if (has_deadline_ &&
               std::chrono::steady_clock::now() >= deadline_) {
      stopped_ = true;
      deadline_exceeded_ = true;
    }
    return stopped_;
  }

  bool stopped() const { return stopped_; }
  bool deadline_exceeded() const { return deadline_exceeded_; }

 private:
  const CancelToken* cancel_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_;
  size_t countdown_ = 1;  // first call evaluates, then every kCheckInterval
  bool stopped_ = false;
  bool deadline_exceeded_ = false;
};

/// Interface of all k-NN engines over a fixed set of points.
class KnnIndex {
 public:
  virtual ~KnnIndex() = default;

  /// Returns the `k` nearest rows to `query`, nearest first, with ties
  /// broken by row index. Fewer than `k` results are returned only when the
  /// index holds fewer than `k` points. `skip_index` (when not kNoSkip)
  /// excludes one row — used by leave-one-out evaluation to exclude the
  /// query point itself.
  ///
  /// This is the instrumented entry point: it forwards to the backend's
  /// QueryImpl and, while obs::MetricsRegistry::Enabled(), publishes the
  /// per-query latency and work counters to the global registry under
  /// `index.<name()>.*`. The registry totals accumulate exactly the
  /// `QueryStats` fields the `stats` out-param receives.
  std::vector<Neighbor> Query(const Vector& query, size_t k,
                              size_t skip_index, QueryStats* stats) const;

  /// Like the 4-argument Query but subject to `limits`: when the deadline
  /// passes or the token is cancelled the traversal stops at its next
  /// control check and the best neighbors found so far are returned with
  /// `stats->truncated` set (deadline expiries also bump the
  /// `queries.deadline_exceeded` counter). Inactive limits take the exact
  /// unlimited path.
  std::vector<Neighbor> Query(const Vector& query, size_t k,
                              size_t skip_index, QueryStats* stats,
                              const QueryLimits& limits) const;

  std::vector<Neighbor> Query(const Vector& query, size_t k) const {
    return Query(query, k, kNoSkip, nullptr);
  }

  /// Answers one query per row of `queries`, fanning the rows across the
  /// shared thread pool (see common/parallel.h). Entry i of the result is
  /// exactly Query(queries.Row(i), k): queries are independent, so the
  /// parallel path is bitwise identical to the serial one. When `stats` is
  /// non-null the per-thread counters are merged into it.
  virtual std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& queries, size_t k, QueryStats* stats = nullptr) const;

  /// QueryBatch under `limits`. The deadline is batch-wide: one absolute
  /// expiry computed on entry and shared by every row (each row still keeps
  /// its own check countdown), so a stalled batch returns within one check
  /// interval per in-flight row. Rows answered after expiry come back
  /// truncated (possibly empty); `stats->truncated` reports whether any row
  /// was cut short.
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& queries, size_t k, QueryStats* stats,
      const QueryLimits& limits) const;

  /// Number of indexed points.
  virtual size_t size() const = 0;
  /// Dimensionality of the indexed points.
  virtual size_t dims() const = 0;
  virtual std::string name() const = 0;

  static constexpr size_t kNoSkip = static_cast<size_t>(-1);

 protected:
  /// Backend hook behind Query(): answers one query, accumulating work
  /// counters into `stats` when it is non-null. `control` is null for
  /// unlimited queries; when non-null the backend must call
  /// control->ShouldStop() around each distance evaluation (or node visit)
  /// and, once it returns true, stop traversing and return the best
  /// candidates collected so far. The wrapper translates a stopped control
  /// into `QueryStats::truncated`.
  virtual std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                          size_t skip_index,
                                          QueryStats* stats,
                                          QueryControl* control) const = 0;

 private:
  /// The serving core's multi-probe scatter-gather shares one absolute
  /// deadline across per-probe (and per-batch-row) controls, which requires
  /// the control-taking entry point rather than the relative-limits one.
  friend class ServingCore;

  /// Shared body of both Query overloads: instruments unless disabled and
  /// folds a stopped control into the stats.
  std::vector<Neighbor> QueryWithControl(const Vector& query, size_t k,
                                         size_t skip_index, QueryStats* stats,
                                         QueryControl* control) const;
  /// Registry metric bundle for this backend, resolved from name() on the
  /// first instrumented query and cached (concurrent first queries resolve
  /// to the same process-lifetime bundle, so the race is benign).
  const obs::QueryPathMetrics& Instrument() const;

  /// Interned "index.<name()>.query" span name, lazily resolved and cached
  /// the same way as the metric bundle (interned names have process
  /// lifetime, so the race is equally benign).
  const char* TraceName() const;

  mutable std::atomic<const obs::QueryPathMetrics*> instrument_{nullptr};
  mutable std::atomic<const char*> trace_name_{nullptr};
};

/// Bounded max-heap collecting the k best candidates during a scan.
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// Offers a candidate; keeps only the k smallest distances.
  void Offer(size_t index, double distance);

  /// Current k-th best distance, or +infinity while fewer than k collected.
  double Threshold() const;

  /// True once k candidates have been collected.
  bool Full() const { return heap_.size() >= k_; }

  /// Extracts results sorted by (distance, index) ascending.
  std::vector<Neighbor> Take();

 private:
  size_t k_;
  // Max-heap on (distance, index) so the worst candidate is on top.
  std::vector<Neighbor> heap_;
};

}  // namespace cohere

#endif  // COHERE_INDEX_KNN_H_
