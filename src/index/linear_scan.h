#ifndef COHERE_INDEX_LINEAR_SCAN_H_
#define COHERE_INDEX_LINEAR_SCAN_H_

#include <memory>

#include "index/knn.h"

namespace cohere {

/// Exhaustive-scan k-NN: the exact reference every other engine is checked
/// against, and — per the paper's motivation — often the only competitive
/// option in full dimensionality where partition pruning fails.
class LinearScanIndex final : public KnnIndex {
 public:
  /// Indexes the rows of `data`. The matrix is copied; `metric` is shared
  /// with the caller and must outlive the index.
  LinearScanIndex(Matrix data, const Metric* metric);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  size_t size() const override { return data_.rows(); }
  size_t dims() const override { return data_.cols(); }
  std::string name() const override { return "linear_scan"; }

  /// The indexed rows. The dynamic engine's copy-on-write insert path reads
  /// these to extend the reduced matrix without re-projecting every record.
  const Matrix& data() const { return data_; }

 private:
  Matrix data_;
  const Metric* metric_;
};

}  // namespace cohere

#endif  // COHERE_INDEX_LINEAR_SCAN_H_
