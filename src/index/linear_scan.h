#ifndef COHERE_INDEX_LINEAR_SCAN_H_
#define COHERE_INDEX_LINEAR_SCAN_H_

#include <memory>

#include "index/knn.h"
#include "linalg/blocked_matrix.h"

namespace cohere {

/// Exhaustive-scan k-NN: the exact reference every other engine is checked
/// against, and — per the paper's motivation — often the only competitive
/// option in full dimensionality where partition pruning fails.
///
/// Scans run block-at-a-time over 64-byte-aligned BlockedMatrix storage
/// through Metric::ComparableDistanceBlock, which dispatches to the SIMD
/// kernel tier the CPU supports; results are bitwise identical to the
/// historical per-row scalar scan at every dispatch level.
class LinearScanIndex final : public KnnIndex {
 public:
  /// Indexes shard-owned blocked rows. `rows` is shared with the snapshot
  /// shard (no per-index copy); `metric` must outlive the index.
  LinearScanIndex(std::shared_ptr<const BlockedMatrix> rows,
                  const Metric* metric);
  /// Convenience: copies `data` into a privately owned BlockedMatrix.
  LinearScanIndex(Matrix data, const Metric* metric);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  /// Batch override: fans whole query-blocks to the pool and scans each
  /// chunk with the multi-query kernel (rows are loaded from cache once per
  /// chunk rather than once per query). Results are bitwise identical to
  /// per-query Query(); when metrics or tracing are enabled the base
  /// per-query instrumented path runs instead so per-query latency
  /// histograms stay faithful.
  std::vector<std::vector<Neighbor>> QueryBatch(
      const Matrix& queries, size_t k,
      QueryStats* stats = nullptr) const override;

  size_t size() const override { return rows_->rows(); }
  size_t dims() const override { return rows_->cols(); }
  std::string name() const override { return "linear_scan"; }

  /// The indexed rows. The dynamic engine's copy-on-write insert path reads
  /// these to extend the reduced matrix without re-projecting every record.
  const BlockedMatrix& data() const { return *rows_; }
  /// Shared handle to the indexed rows (successor indexes alias it).
  const std::shared_ptr<const BlockedMatrix>& shared_data() const {
    return rows_;
  }

 private:
  std::shared_ptr<const BlockedMatrix> rows_;
  const Metric* metric_;
};

}  // namespace cohere

#endif  // COHERE_INDEX_LINEAR_SCAN_H_
