#include "index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace cohere {
namespace {

// Fraction of a node's entries evicted by forced reinsertion (the R* paper's
// recommended 30%).
constexpr double kReinsertFraction = 0.3;

}  // namespace

RStarTreeIndex::RStarTreeIndex(std::shared_ptr<const BlockedMatrix> rows,
                               const Metric* metric, size_t max_entries)
    : rows_(std::move(rows)), metric_(metric), max_entries_(max_entries) {
  COHERE_CHECK(rows_ != nullptr);
  COHERE_CHECK(metric_ != nullptr);
  COHERE_CHECK_MSG(metric_->IsTrueMetric(),
                   "R*-tree pruning requires a true metric");
  COHERE_CHECK_GE(max_entries_, 4u);
  min_entries_ = std::max<size_t>(2, max_entries_ * 2 / 5);

  if (rows_->rows() == 0) return;
  nodes_.emplace_back();  // root leaf
  root_ = 0;
  for (size_t i = 0; i < rows_->rows(); ++i) Insert(i);
}

RStarTreeIndex::RStarTreeIndex(Matrix data, const Metric* metric,
                               size_t max_entries)
    : RStarTreeIndex(std::make_shared<BlockedMatrix>(data), metric,
                     max_entries) {}

// --- geometry -------------------------------------------------------------

double RStarTreeIndex::Area(const Vector& lo, const Vector& hi) {
  double area = 1.0;
  for (size_t j = 0; j < lo.size(); ++j) area *= hi[j] - lo[j];
  return area;
}

double RStarTreeIndex::Margin(const Vector& lo, const Vector& hi) {
  double margin = 0.0;
  for (size_t j = 0; j < lo.size(); ++j) margin += hi[j] - lo[j];
  return margin;
}

double RStarTreeIndex::Overlap(const Vector& alo, const Vector& ahi,
                               const Vector& blo, const Vector& bhi) {
  double overlap = 1.0;
  for (size_t j = 0; j < alo.size(); ++j) {
    const double lo = std::max(alo[j], blo[j]);
    const double hi = std::min(ahi[j], bhi[j]);
    if (hi <= lo) return 0.0;
    overlap *= hi - lo;
  }
  return overlap;
}

void RStarTreeIndex::Extend(Vector* lo, Vector* hi, const Entry& e) {
  for (size_t j = 0; j < lo->size(); ++j) {
    (*lo)[j] = std::min((*lo)[j], e.lo[j]);
    (*hi)[j] = std::max((*hi)[j], e.hi[j]);
  }
}

double RStarTreeIndex::EnlargedArea(const Vector& lo, const Vector& hi,
                                    const Entry& e) {
  double area = 1.0;
  for (size_t j = 0; j < lo.size(); ++j) {
    area *= std::max(hi[j], e.hi[j]) - std::min(lo[j], e.lo[j]);
  }
  return area;
}

double RStarTreeIndex::MinComparableDistance(const Vector& query,
                                             const Vector& lo,
                                             const Vector& hi,
                                             Vector* scratch) const {
  Vector& clamped = *scratch;
  for (size_t j = 0; j < query.size(); ++j) {
    clamped[j] = std::clamp(query[j], lo[j], hi[j]);
  }
  return metric_->ComparableDistance(query, clamped);
}

RStarTreeIndex::Entry RStarTreeIndex::MakeLeafEntry(size_t row) const {
  Entry e;
  e.lo = rows_->Row(row);
  e.hi = e.lo;
  e.row = row;
  return e;
}

RStarTreeIndex::Entry RStarTreeIndex::MakeNodeEntry(size_t node_id) const {
  const Node& node = nodes_[node_id];
  COHERE_CHECK(!node.entries.empty());
  Entry e;
  e.lo = node.entries[0].lo;
  e.hi = node.entries[0].hi;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    Extend(&e.lo, &e.hi, node.entries[i]);
  }
  e.child = node_id;
  return e;
}

// --- insertion ------------------------------------------------------------

void RStarTreeIndex::Insert(size_t row) {
  std::vector<bool> reinserted_at_level(height_ + 1, false);
  InsertEntry(MakeLeafEntry(row), /*target_level=*/0, &reinserted_at_level);
}

size_t RStarTreeIndex::ChooseSubtree(const Entry& entry, size_t target_level,
                                     std::vector<size_t>* path) const {
  size_t current = root_;
  path->clear();
  path->push_back(current);
  while (nodes_[current].level > target_level) {
    const Node& node = nodes_[current];
    const bool children_are_leaves = node.level == 1 && target_level == 0;
    size_t best = 0;
    if (children_are_leaves) {
      // R* rule: minimum overlap enlargement, ties by area enlargement.
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_area_delta = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        Vector grown_lo = node.entries[i].lo;
        Vector grown_hi = node.entries[i].hi;
        Vector tmp_lo = grown_lo;
        Vector tmp_hi = grown_hi;
        Extend(&grown_lo, &grown_hi, entry);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (size_t j = 0; j < node.entries.size(); ++j) {
          if (j == i) continue;
          overlap_before += Overlap(tmp_lo, tmp_hi, node.entries[j].lo,
                                    node.entries[j].hi);
          overlap_after += Overlap(grown_lo, grown_hi, node.entries[j].lo,
                                   node.entries[j].hi);
        }
        const double overlap_delta = overlap_after - overlap_before;
        const double area_delta =
            EnlargedArea(tmp_lo, tmp_hi, entry) - Area(tmp_lo, tmp_hi);
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             area_delta < best_area_delta)) {
          best_overlap_delta = overlap_delta;
          best_area_delta = area_delta;
          best = i;
        }
      }
    } else {
      // Higher levels: minimum area enlargement, ties by area.
      double best_area_delta = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const double area = Area(node.entries[i].lo, node.entries[i].hi);
        const double area_delta =
            EnlargedArea(node.entries[i].lo, node.entries[i].hi, entry) -
            area;
        if (area_delta < best_area_delta ||
            (area_delta == best_area_delta && area < best_area)) {
          best_area_delta = area_delta;
          best_area = area;
          best = i;
        }
      }
    }
    current = node.entries[best].child;
    path->push_back(current);
  }
  return current;
}

void RStarTreeIndex::AdjustPathMbrs(const std::vector<size_t>& path) {
  for (size_t i = path.size(); i-- > 1;) {
    Node& parent = nodes_[path[i - 1]];
    const size_t child_id = path[i];
    for (Entry& e : parent.entries) {
      if (e.child == child_id) {
        const Entry fresh = MakeNodeEntry(child_id);
        e.lo = fresh.lo;
        e.hi = fresh.hi;
        break;
      }
    }
  }
}

void RStarTreeIndex::InsertEntry(const Entry& entry, size_t target_level,
                                 std::vector<bool>* reinserted_at_level) {
  std::vector<size_t> path;
  const size_t target = ChooseSubtree(entry, target_level, &path);
  nodes_[target].entries.push_back(entry);
  AdjustPathMbrs(path);
  if (nodes_[target].entries.size() > max_entries_) {
    OverflowTreatment(target, &path, reinserted_at_level);
  }
}

void RStarTreeIndex::OverflowTreatment(
    size_t node_id, std::vector<size_t>* path,
    std::vector<bool>* reinserted_at_level) {
  Node& node = nodes_[node_id];
  const size_t level = node.level;
  if (reinserted_at_level->size() <= level) {
    reinserted_at_level->resize(level + 1, false);
  }

  if (node_id != root_ && !(*reinserted_at_level)[level]) {
    (*reinserted_at_level)[level] = true;

    // Forced reinsertion: evict the entries whose centers are farthest from
    // the node's MBR center and insert them again at the same level.
    const Entry node_mbr = MakeNodeEntry(node_id);
    const size_t d = rows_->cols();
    Vector center(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = 0.5 * (node_mbr.lo[j] + node_mbr.hi[j]);
    }
    std::vector<std::pair<double, size_t>> scored;
    scored.reserve(node.entries.size());
    for (size_t i = 0; i < node.entries.size(); ++i) {
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double c = 0.5 * (node.entries[i].lo[j] + node.entries[i].hi[j]);
        const double diff = c - center[j];
        dist += diff * diff;
      }
      scored.emplace_back(dist, i);
    }
    const size_t evict =
        std::max<size_t>(1, static_cast<size_t>(kReinsertFraction *
                                                static_cast<double>(
                                                    node.entries.size())));
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<Entry> evicted;
    std::vector<bool> remove(node.entries.size(), false);
    for (size_t i = 0; i < evict; ++i) {
      remove[scored[i].second] = true;
      evicted.push_back(node.entries[scored[i].second]);
    }
    std::vector<Entry> kept;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (!remove[i]) kept.push_back(std::move(node.entries[i]));
    }
    node.entries = std::move(kept);
    AdjustPathMbrs(*path);

    for (const Entry& e : evicted) {
      InsertEntry(e, level, reinserted_at_level);
    }
    return;
  }

  SplitNode(node_id, path);
}

void RStarTreeIndex::SplitNode(size_t node_id, std::vector<size_t>* path) {
  // R* split: choose the axis with the smallest margin sum over all
  // candidate distributions (sorting by both lower and upper MBR edges),
  // then the distribution on that axis with minimum overlap (ties: area).
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  const size_t total = entries.size();
  const size_t d = rows_->cols();
  COHERE_CHECK_GT(total, max_entries_);

  auto mbr_of = [&entries](const std::vector<size_t>& idx, size_t begin,
                           size_t end, Vector* lo, Vector* hi) {
    *lo = entries[idx[begin]].lo;
    *hi = entries[idx[begin]].hi;
    for (size_t i = begin + 1; i < end; ++i) {
      for (size_t j = 0; j < lo->size(); ++j) {
        (*lo)[j] = std::min((*lo)[j], entries[idx[i]].lo[j]);
        (*hi)[j] = std::max((*hi)[j], entries[idx[i]].hi[j]);
      }
    }
  };

  size_t best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();

  std::vector<size_t> order(total);
  for (size_t axis = 0; axis < d; ++axis) {
    for (bool by_hi : {false, true}) {
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(),
                [&entries, axis, by_hi](size_t a, size_t b) {
                  return by_hi ? entries[a].hi[axis] < entries[b].hi[axis]
                               : entries[a].lo[axis] < entries[b].lo[axis];
                });
      double margin_sum = 0.0;
      Vector lo1(d);
      Vector hi1(d);
      Vector lo2(d);
      Vector hi2(d);
      for (size_t split = min_entries_; split <= total - min_entries_;
           ++split) {
        mbr_of(order, 0, split, &lo1, &hi1);
        mbr_of(order, split, total, &lo2, &hi2);
        margin_sum += Margin(lo1, hi1) + Margin(lo2, hi2);
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&entries, best_axis, best_axis_by_hi](size_t a, size_t b) {
              return best_axis_by_hi
                         ? entries[a].hi[best_axis] < entries[b].hi[best_axis]
                         : entries[a].lo[best_axis] <
                               entries[b].lo[best_axis];
            });

  size_t best_split = min_entries_;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  {
    Vector lo1(d);
    Vector hi1(d);
    Vector lo2(d);
    Vector hi2(d);
    for (size_t split = min_entries_; split <= total - min_entries_;
         ++split) {
      mbr_of(order, 0, split, &lo1, &hi1);
      mbr_of(order, split, total, &lo2, &hi2);
      const double overlap = Overlap(lo1, hi1, lo2, hi2);
      const double area = Area(lo1, hi1) + Area(lo2, hi2);
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_split = split;
      }
    }
  }

  // Materialize the two groups.
  const size_t sibling_id = nodes_.size();
  nodes_.emplace_back();
  Node& node = nodes_[node_id];
  Node& sibling = nodes_[sibling_id];
  sibling.leaf = node.leaf;
  sibling.level = node.level;
  node.entries.clear();
  for (size_t i = 0; i < best_split; ++i) {
    node.entries.push_back(entries[order[i]]);
  }
  for (size_t i = best_split; i < total; ++i) {
    sibling.entries.push_back(entries[order[i]]);
  }

  if (node_id == root_) {
    const size_t new_root = nodes_.size();
    nodes_.emplace_back();
    Node& root = nodes_[new_root];
    root.leaf = false;
    root.level = nodes_[node_id].level + 1;
    root.entries.push_back(MakeNodeEntry(node_id));
    root.entries.push_back(MakeNodeEntry(sibling_id));
    root_ = new_root;
    height_ = root.level + 1;
    return;
  }

  // Fix the parent: refresh the split node's entry, add the sibling.
  COHERE_CHECK_GE(path->size(), 2u);
  path->pop_back();
  const size_t parent_id = path->back();
  Node& parent = nodes_[parent_id];
  for (Entry& e : parent.entries) {
    if (e.child == node_id) {
      const Entry fresh = MakeNodeEntry(node_id);
      e.lo = fresh.lo;
      e.hi = fresh.hi;
      break;
    }
  }
  parent.entries.push_back(MakeNodeEntry(sibling_id));
  AdjustPathMbrs(*path);
  if (parent.entries.size() > max_entries_) {
    // Propagate: a split at the parent level (reinsert only applies once
    // per level per insertion and is handled in OverflowTreatment).
    SplitNode(parent_id, path);
  }
}

// --- query ----------------------------------------------------------------

std::vector<Neighbor> RStarTreeIndex::QueryImpl(const Vector& query, size_t k,
                                                size_t skip_index,
                                                QueryStats* stats,
                                                QueryControl* control) const {
  COHERE_CHECK_EQ(query.size(), rows_->cols());
  KnnCollector collector(k);
  if (root_ == kInvalid || k == 0) return collector.Take();

  Vector scratch(rows_->cols());
  using Item = std::pair<double, size_t>;  // (mindist, node id)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier;
  frontier.emplace(0.0, root_);

  // Register accumulators, published to `stats` in one add after the loop.
  uint64_t nodes_visited = 0;
  uint64_t distance_evaluations = 0;

  while (!frontier.empty()) {
    // One control check per node bounds deadline overshoot by a node's
    // worth of entries without touching the per-entry hot path.
    if (control != nullptr && control->ShouldStop()) break;
    const auto [bound, node_id] = frontier.top();
    frontier.pop();
    if (collector.Full() && bound > collector.Threshold()) break;
    const Node& node = nodes_[node_id];
    ++nodes_visited;

    for (const Entry& e : node.entries) {
      if (node.leaf) {
        if (e.row == skip_index) continue;
        const double comparable =
            MinComparableDistance(query, e.lo, e.hi, &scratch);
        ++distance_evaluations;
        collector.Offer(e.row, comparable);
      } else {
        const double child_bound =
            MinComparableDistance(query, e.lo, e.hi, &scratch);
        if (!collector.Full() || child_bound <= collector.Threshold()) {
          frontier.emplace(child_bound, e.child);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->nodes_visited += nodes_visited;
    stats->distance_evaluations += distance_evaluations;
  }

  std::vector<Neighbor> out = collector.Take();
  for (Neighbor& n : out) {
    n.distance = metric_->ComparableToActual(n.distance);
  }
  return out;
}

// --- validation -----------------------------------------------------------

size_t RStarTreeIndex::NumNodes() const { return nodes_.size(); }

bool RStarTreeIndex::CheckNode(size_t node_id, size_t expected_level,
                               std::vector<size_t>* row_counts) const {
  const Node& node = nodes_[node_id];
  if (node.level != expected_level) return false;
  if (node.leaf != (node.level == 0)) return false;
  if (node_id != root_ &&
      (node.entries.size() < min_entries_ ||
       node.entries.size() > max_entries_)) {
    return false;
  }
  for (const Entry& e : node.entries) {
    if (node.leaf) {
      if (e.row >= row_counts->size()) return false;
      ++(*row_counts)[e.row];
      for (size_t j = 0; j < rows_->cols(); ++j) {
        if (e.lo[j] != rows_->At(e.row, j) || e.hi[j] != rows_->At(e.row, j)) {
          return false;
        }
      }
    } else {
      // Entry MBR must equal the child's true MBR.
      const Entry fresh = MakeNodeEntry(e.child);
      for (size_t j = 0; j < rows_->cols(); ++j) {
        if (e.lo[j] != fresh.lo[j] || e.hi[j] != fresh.hi[j]) return false;
      }
      if (!CheckNode(e.child, expected_level - 1, row_counts)) return false;
    }
  }
  return true;
}

bool RStarTreeIndex::CheckInvariants() const {
  if (rows_->rows() == 0) return root_ == kInvalid;
  std::vector<size_t> row_counts(rows_->rows(), 0);
  if (!CheckNode(root_, nodes_[root_].level, &row_counts)) return false;
  if (nodes_[root_].level + 1 != height_) return false;
  for (size_t count : row_counts) {
    if (count != 1) return false;
  }
  return true;
}

}  // namespace cohere
