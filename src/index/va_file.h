#ifndef COHERE_INDEX_VA_FILE_H_
#define COHERE_INDEX_VA_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/knn.h"
#include "linalg/blocked_matrix.h"

namespace cohere {

/// Vector-approximation file (Weber, Schek & Blott, VLDB 1998).
///
/// The classical high-dimensional baseline the paper cites [21]: each
/// dimension is quantized into 2^bits cells with equi-frequency boundaries;
/// a query first scans the compact approximations, computing a lower and an
/// upper distance bound per point, then refines only the candidates whose
/// lower bound beats the k-th smallest upper bound. Supports the
/// per-dimension-decomposable metrics (L1, L2, L-infinity).
///
/// The boundary table is one flat (d x (cells+1)) array and the codes are a
/// contiguous row-major n x d byte table, so the approximation scan runs
/// through the packed SIMD bound kernel (src/simd/kernels.h) — bitwise
/// identical to the scalar bound loop at every dispatch level.
class VaFileIndex final : public KnnIndex {
 public:
  /// Indexes shard-owned blocked rows (shared, no per-index copy). `metric`
  /// must outlive the index and be one of kEuclidean, kManhattan,
  /// kChebyshev. `bits_per_dim` must be in [1, 8].
  VaFileIndex(std::shared_ptr<const BlockedMatrix> rows, const Metric* metric,
              size_t bits_per_dim = 5);
  /// Convenience: copies `data` into a privately owned BlockedMatrix.
  VaFileIndex(Matrix data, const Metric* metric, size_t bits_per_dim = 5);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  size_t size() const override { return rows_->rows(); }
  size_t dims() const override { return rows_->cols(); }
  std::string name() const override { return "va_file"; }

  /// Size in bytes of the approximation state scanned by phase 1 (what
  /// would be read from disk in the original system): the packed code table
  /// plus the flattened boundary table.
  size_t ApproximationBytes() const {
    return codes_.size() * sizeof(uint8_t) +
           boundaries_.size() * sizeof(double);
  }

 private:
  /// Cell boundaries for dimension j live at boundaries_[j * (cells_ + 1)].
  double CellLo(size_t dim, uint8_t cell) const {
    return boundaries_[dim * (cells_ + 1) + cell];
  }
  double CellHi(size_t dim, uint8_t cell) const {
    return boundaries_[dim * (cells_ + 1) + cell + 1];
  }

  std::shared_ptr<const BlockedMatrix> rows_;
  const Metric* metric_;
  size_t cells_;  // 2^bits_per_dim
  std::vector<double> boundaries_;  // flat d x (cells+1), stride cells+1
  std::vector<uint8_t> codes_;      // row-major n x d cell codes
};

}  // namespace cohere

#endif  // COHERE_INDEX_VA_FILE_H_
