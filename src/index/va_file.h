#ifndef COHERE_INDEX_VA_FILE_H_
#define COHERE_INDEX_VA_FILE_H_

#include <cstdint>
#include <vector>

#include "index/knn.h"

namespace cohere {

/// Vector-approximation file (Weber, Schek & Blott, VLDB 1998).
///
/// The classical high-dimensional baseline the paper cites [21]: each
/// dimension is quantized into 2^bits cells with equi-frequency boundaries;
/// a query first scans the compact approximations, computing a lower and an
/// upper distance bound per point, then refines only the candidates whose
/// lower bound beats the k-th smallest upper bound. Supports the
/// per-dimension-decomposable metrics (L1, L2, L-infinity).
class VaFileIndex final : public KnnIndex {
 public:
  /// Indexes the rows of `data` (copied). `metric` must outlive the index
  /// and be one of kEuclidean, kManhattan, kChebyshev. `bits_per_dim` must
  /// be in [1, 8].
  VaFileIndex(Matrix data, const Metric* metric, size_t bits_per_dim = 5);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  size_t size() const override { return data_.rows(); }
  size_t dims() const override { return data_.cols(); }
  std::string name() const override { return "va_file"; }

  /// Size in bytes of the approximation table (what would be scanned from
  /// disk in the original system).
  size_t ApproximationBytes() const { return codes_.size(); }

 private:
  /// Cell boundaries for dimension j: boundaries_[j] has cells+1 entries.
  double CellLo(size_t dim, uint8_t cell) const {
    return boundaries_[dim][cell];
  }
  double CellHi(size_t dim, uint8_t cell) const {
    return boundaries_[dim][cell + 1];
  }

  Matrix data_;
  const Metric* metric_;
  size_t cells_;  // 2^bits_per_dim
  std::vector<std::vector<double>> boundaries_;
  std::vector<uint8_t> codes_;  // row-major n x d cell codes
};

}  // namespace cohere

#endif  // COHERE_INDEX_VA_FILE_H_
