#ifndef COHERE_INDEX_VP_TREE_H_
#define COHERE_INDEX_VP_TREE_H_

#include <memory>
#include <vector>

#include "index/knn.h"
#include "linalg/blocked_matrix.h"

namespace cohere {

/// Vantage-point tree: a metric index that needs only the triangle
/// inequality, no coordinate geometry.
///
/// Each node stores a vantage point and the median distance of its subtree's
/// points to it; the subtree splits into inside (closer than the median) and
/// outside halves. A query descends both halves but prunes whichever the
/// triangle inequality proves cannot contain a closer point than the current
/// k-th best. Complements the kd-tree: works for any true Metric (including
/// L1/L-infinity without per-dimension bounds) but, like every metric tree,
/// loses its pruning power as the distance contrast collapses in high
/// dimensionality.
class VpTreeIndex final : public KnnIndex {
 public:
  /// Indexes shard-owned blocked rows (shared, no per-index copy). `metric`
  /// must outlive the index and satisfy the triangle inequality.
  VpTreeIndex(std::shared_ptr<const BlockedMatrix> rows, const Metric* metric,
              size_t leaf_size = 8);
  /// Convenience: copies `data` into a privately owned BlockedMatrix.
  VpTreeIndex(Matrix data, const Metric* metric, size_t leaf_size = 8);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  size_t size() const override { return rows_->rows(); }
  size_t dims() const override { return rows_->cols(); }
  std::string name() const override { return "vp_tree"; }

  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    size_t vantage = 0;        // row index of the vantage point
    double radius = 0.0;       // median distance of the subtree to vantage
    size_t inside = kInvalid;  // child with distance <= radius
    size_t outside = kInvalid; // child with distance > radius
    // Leaf payload: range into order_.
    size_t begin = 0;
    size_t end = 0;

    bool IsLeaf() const { return inside == kInvalid && outside == kInvalid; }
  };
  static constexpr size_t kInvalid = static_cast<size_t>(-1);

  size_t BuildNode(size_t begin, size_t end);
  void Search(size_t node_index, const Vector& query, size_t k,
              size_t skip_index, KnnCollector* collector, QueryStats* stats,
              QueryControl* control) const;

  double RowDistance(const Vector& query, size_t row) const;

  std::shared_ptr<const BlockedMatrix> rows_;
  const Metric* metric_;
  size_t leaf_size_;
  std::vector<size_t> order_;
  std::vector<Node> nodes_;
};

}  // namespace cohere

#endif  // COHERE_INDEX_VP_TREE_H_
