#include "index/va_file.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "simd/kernels.h"

namespace cohere {

VaFileIndex::VaFileIndex(std::shared_ptr<const BlockedMatrix> rows,
                         const Metric* metric, size_t bits_per_dim)
    : rows_(std::move(rows)), metric_(metric) {
  COHERE_CHECK(rows_ != nullptr);
  COHERE_CHECK(metric_ != nullptr);
  const MetricKind kind = metric_->kind();
  COHERE_CHECK_MSG(kind == MetricKind::kEuclidean ||
                       kind == MetricKind::kManhattan ||
                       kind == MetricKind::kChebyshev,
                   "VA-file needs a per-dimension decomposable metric");
  COHERE_CHECK(bits_per_dim >= 1 && bits_per_dim <= 8);
  cells_ = size_t{1} << bits_per_dim;

  const size_t n = rows_->rows();
  const size_t d = rows_->cols();
  const size_t bstride = cells_ + 1;
  boundaries_.assign(d * bstride, 0.0);
  codes_.assign(n * d, 0);

  std::vector<double> column(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) column[i] = rows_->At(i, j);
    std::sort(column.begin(), column.end());

    // Equi-frequency boundaries: cell c covers ranks [c*n/cells,
    // (c+1)*n/cells). Duplicated boundaries (constant stretches) are legal —
    // such cells are simply empty.
    double* b = boundaries_.data() + j * bstride;
    b[0] = column.empty() ? 0.0 : column.front();
    for (size_t c = 1; c < cells_; ++c) {
      const size_t rank = c * n / cells_;
      b[c] = column.empty() ? 0.0 : column[std::min(rank, n - 1)];
    }
    // Nudge the top boundary so max values land inside the last cell.
    const double top = column.empty() ? 1.0 : column.back();
    b[cells_] = top + (std::fabs(top) + 1.0) * 1e-12;

    for (size_t i = 0; i < n; ++i) {
      const double v = rows_->At(i, j);
      // Last boundary strictly above all values => upper_bound in [1, cells].
      const size_t cell =
          static_cast<size_t>(std::upper_bound(b + 1, b + bstride, v) -
                              (b + 1));
      codes_[i * d + j] = static_cast<uint8_t>(std::min(cell, cells_ - 1));
    }
  }
}

VaFileIndex::VaFileIndex(Matrix data, const Metric* metric,
                         size_t bits_per_dim)
    : VaFileIndex(std::make_shared<BlockedMatrix>(data), metric,
                  bits_per_dim) {}

std::vector<Neighbor> VaFileIndex::QueryImpl(const Vector& query, size_t k,
                                             size_t skip_index,
                                             QueryStats* stats,
                                             QueryControl* control) const {
  const size_t n = rows_->rows();
  const size_t d = rows_->cols();
  COHERE_CHECK_EQ(query.size(), d);
  if (k == 0 || n == 0) return {};

  const MetricKind kind = metric_->kind();

  // Phase 1: scan the approximations computing lower/upper bounds in the
  // metric's comparable form.
  std::vector<std::pair<double, size_t>> candidates;  // (lower bound, index)
  candidates.reserve(n);
  KnnCollector upper_bounds(k);

  // Phase 1 touches every non-skipped approximation cell; without a control
  // the total is known up front, so count in one add and keep the hot loop
  // free of bookkeeping.
  size_t visited = 0;
  if (control == nullptr && stats != nullptr) {
    stats->nodes_visited += n - (skip_index < n ? 1 : 0);
  }
  if (control == nullptr) {
    // Packed bound scan: one kernel pass per span of code rows over the
    // flattened boundary table, then a sequential offer loop — the same
    // (lb, ub, index) stream as the scalar loop, bit for bit.
    const auto& kernels = simd::ActiveKernels();
    const auto va_bounds = kind == MetricKind::kEuclidean ? kernels.va_bounds_l2
                           : kind == MetricKind::kManhattan
                               ? kernels.va_bounds_l1
                               : kernels.va_bounds_linf;
    constexpr size_t kSpan = 256;
    const size_t bstride = cells_ + 1;
    double lb[kSpan];
    double ub[kSpan];
    for (size_t base = 0; base < n; base += kSpan) {
      const size_t span = std::min(kSpan, n - base);
      va_bounds(query.data(), codes_.data() + base * d, span, d,
                boundaries_.data(), bstride, lb, ub);
      for (size_t r = 0; r < span; ++r) {
        const size_t i = base + r;
        if (i == skip_index) continue;
        upper_bounds.Offer(i, ub[r]);
        candidates.emplace_back(lb[r], i);
      }
    }
    simd::CountKernel(simd::KernelId::kVaBounds, (n + kSpan - 1) / kSpan);
  } else {
    // Deadline/cancel path: per-row bound evaluation preserves the exact
    // truncation semantics (one control check per approximation).
    for (size_t i = 0; i < n; ++i) {
      if (i == skip_index) continue;
      if (control->ShouldStop()) break;
      ++visited;
      const uint8_t* code = &codes_[i * d];
      double lb = 0.0;
      double ub = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double lo = CellLo(j, code[j]);
        const double hi = CellHi(j, code[j]);
        const double q = query[j];
        double lb_j = 0.0;
        if (q < lo) {
          lb_j = lo - q;
        } else if (q > hi) {
          lb_j = q - hi;
        }
        const double ub_j = std::max(std::fabs(q - lo), std::fabs(q - hi));
        switch (kind) {
          case MetricKind::kEuclidean:
            lb += lb_j * lb_j;
            ub += ub_j * ub_j;
            break;
          case MetricKind::kManhattan:
            lb += lb_j;
            ub += ub_j;
            break;
          case MetricKind::kChebyshev:
            lb = std::max(lb, lb_j);
            ub = std::max(ub, ub_j);
            break;
          default:
            COHERE_CHECK_MSG(false, "unreachable metric kind");
        }
      }
      upper_bounds.Offer(i, ub);
      candidates.emplace_back(lb, i);
    }
  }

  // Points whose lower bound exceeds the k-th smallest upper bound can never
  // make the answer set.
  const double ub_threshold = upper_bounds.Threshold();
  std::erase_if(candidates, [ub_threshold](const auto& c) {
    return c.first > ub_threshold;
  });
  std::sort(candidates.begin(), candidates.end());

  // Phase 2: refine candidates in ascending lower-bound order; stop as soon
  // as the next lower bound exceeds the current exact k-th best. Refinement
  // reads the shard-owned blocked rows (scattered candidates, so per-row
  // distance evaluation).
  KnnCollector collector(k);
  uint64_t refined = 0;  // register accumulator; published once below
  for (const auto& [lb, i] : candidates) {
    if (collector.Full() && lb > collector.Threshold()) break;
    if (control != nullptr && control->ShouldStop()) break;
    const double comparable =
        metric_->ComparableDistance(query.data(), rows_->RowPtr(i), d);
    ++refined;
    collector.Offer(i, comparable);
  }
  if (stats != nullptr) {
    if (control != nullptr) stats->nodes_visited += visited;
    stats->distance_evaluations += refined;
    stats->candidates_refined += refined;
  }

  std::vector<Neighbor> out = collector.Take();
  for (Neighbor& nb : out) {
    nb.distance = metric_->ComparableToActual(nb.distance);
  }
  return out;
}

}  // namespace cohere
