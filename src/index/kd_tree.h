#ifndef COHERE_INDEX_KD_TREE_H_
#define COHERE_INDEX_KD_TREE_H_

#include <memory>
#include <vector>

#include "index/knn.h"
#include "linalg/blocked_matrix.h"

namespace cohere {

/// Bulk-loaded kd-tree with best-first k-NN search.
///
/// Splits on the dimension of largest spread at the median, keeps per-node
/// bounding boxes, and prunes a subtree when the box's minimum distance to
/// the query exceeds the current k-th best (the "optimistic bound" pruning
/// the paper describes index structures relying on). Requires a true metric
/// whose per-dimension contributions are monotone in |a_i - b_i| (L1, L2,
/// L-infinity qualify); construction checks Metric::IsTrueMetric().
///
/// In full high dimensionality the bound is rarely sharp enough to prune
/// anything and the tree degrades to a (slower) linear scan — which is
/// precisely the phenomenon dimensionality reduction repairs; see
/// bench_index_pruning.
class KdTreeIndex final : public KnnIndex {
 public:
  /// Indexes shard-owned blocked rows (shared, no per-index copy). `metric`
  /// must outlive the index. `leaf_size` caps the number of points in a leaf
  /// node.
  KdTreeIndex(std::shared_ptr<const BlockedMatrix> rows, const Metric* metric,
              size_t leaf_size = 16);
  /// Convenience: copies `data` into a privately owned BlockedMatrix.
  KdTreeIndex(Matrix data, const Metric* metric, size_t leaf_size = 16);

 protected:
  std::vector<Neighbor> QueryImpl(const Vector& query, size_t k,
                                  size_t skip_index, QueryStats* stats,
                                  QueryControl* control) const override;

 public:
  size_t size() const override { return rows_->rows(); }
  size_t dims() const override { return rows_->cols(); }
  std::string name() const override { return "kd_tree"; }

  /// Number of tree nodes (for structural tests).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Bounding box of the points under this node.
    Vector box_lo;
    Vector box_hi;
    // Range [begin, end) into `order_` for leaves.
    size_t begin = 0;
    size_t end = 0;
    // Children (kInvalid for leaves).
    size_t left = kInvalid;
    size_t right = kInvalid;

    bool IsLeaf() const { return left == kInvalid; }
  };
  static constexpr size_t kInvalid = static_cast<size_t>(-1);

  size_t BuildNode(size_t begin, size_t end);

  /// Minimum comparable distance from `query` to the node's box: distance to
  /// the clamped (closest-in-box) point.
  double BoxMinComparable(const Vector& query, const Node& node,
                          Vector* scratch) const;

  std::shared_ptr<const BlockedMatrix> rows_;
  const Metric* metric_;
  size_t leaf_size_;
  std::vector<size_t> order_;  // permutation of row indices
  std::vector<Node> nodes_;    // nodes_[0] is the root
};

}  // namespace cohere

#endif  // COHERE_INDEX_KD_TREE_H_
