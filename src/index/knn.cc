#include "index/knn.h"

#include <algorithm>
#include <limits>

namespace cohere {
namespace {

// Max-heap ordering: the worst (largest distance, then largest index)
// candidate sits at the root so it can be evicted first.
bool HeapLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

}  // namespace

void KnnCollector::Offer(size_t index, double distance) {
  if (heap_.size() < k_) {
    heap_.push_back({index, distance});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  if (k_ == 0) return;
  const Neighbor& worst = heap_.front();
  if (distance > worst.distance ||
      (distance == worst.distance && index > worst.index)) {
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = {index, distance};
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

double KnnCollector::Threshold() const {
  if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
  return heap_.front().distance;
}

std::vector<Neighbor> KnnCollector::Take() {
  std::vector<Neighbor> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), HeapLess);
  return out;
}

}  // namespace cohere
