#include "index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/query_metrics.h"
#include "obs/tracing.h"

namespace cohere {
namespace {

// Max-heap ordering: the worst (largest distance, then largest index)
// candidate sits at the root so it can be evicted first.
bool HeapLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

// Queries per work chunk in QueryBatch. Each query is already a coarse unit
// of work (a full index traversal), so small chunks keep the pool's lanes
// busy even for modest batches.
constexpr size_t kBatchGrain = 4;

}  // namespace

void KnnCollector::Offer(size_t index, double distance) {
  if (heap_.size() < k_) {
    heap_.push_back({index, distance});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  if (k_ == 0) return;
  const Neighbor& worst = heap_.front();
  if (distance > worst.distance ||
      (distance == worst.distance && index > worst.index)) {
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = {index, distance};
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

double KnnCollector::Threshold() const {
  // k = 0 is trivially full with nothing collectable: report the strongest
  // possible pruning bound instead of reading the front of an empty heap.
  if (k_ == 0) return -std::numeric_limits<double>::infinity();
  if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
  return heap_.front().distance;
}

std::vector<Neighbor> KnnCollector::Take() {
  std::vector<Neighbor> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), HeapLess);
  return out;
}

const obs::QueryPathMetrics& KnnIndex::Instrument() const {
  const obs::QueryPathMetrics* bundle =
      instrument_.load(std::memory_order_acquire);
  if (bundle == nullptr) {
    bundle = &obs::QueryPathMetricsFor("index." + name());
    instrument_.store(bundle, std::memory_order_release);
  }
  return *bundle;
}

const char* KnnIndex::TraceName() const {
  const char* cached = trace_name_.load(std::memory_order_acquire);
  if (cached == nullptr) {
    cached = obs::Tracer::InternName("index." + name() + ".query");
    trace_name_.store(cached, std::memory_order_release);
  }
  return cached;
}

long long QueryControl::DeadlineMicros(double deadline_us) {
  // The comparison is written so NaN also lands in the inactive branch.
  if (!(deadline_us > 0.0)) return 0;
  // ~285 years in microseconds: far beyond any real budget, comfortably
  // inside long long, and safe to add to steady_clock::now().
  constexpr double kMaxBudgetUs = 9.0e15;
  if (deadline_us >= kMaxBudgetUs) {
    return static_cast<long long>(kMaxBudgetUs);
  }
  // Round *up*: a (0,1) budget used to truncate to 0us — an already-expired
  // deadline that made every first control check fire.
  return std::max(1LL, static_cast<long long>(std::ceil(deadline_us)));
}

QueryControl QueryControl::FromLimits(const QueryLimits& limits) {
  const long long budget_us = DeadlineMicros(limits.deadline_us);
  const bool has_deadline = budget_us > 0;
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(budget_us);
  }
  return QueryControl(limits.cancel, deadline, has_deadline);
}

namespace {

// Deadline expiries are a service-level event worth counting even though
// each one also shows up as a truncated QueryStats. Counter pointers have
// process lifetime, so caching one in a function-local static is safe.
void CountDeadlineExceeded() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("queries.deadline_exceeded");
  counter->Increment();
}

}  // namespace

std::vector<Neighbor> KnnIndex::Query(const Vector& query, size_t k,
                                      size_t skip_index,
                                      QueryStats* stats) const {
  return QueryWithControl(query, k, skip_index, stats, nullptr);
}

std::vector<Neighbor> KnnIndex::Query(const Vector& query, size_t k,
                                      size_t skip_index, QueryStats* stats,
                                      const QueryLimits& limits) const {
  if (!limits.active()) {
    return QueryWithControl(query, k, skip_index, stats, nullptr);
  }
  QueryControl control = QueryControl::FromLimits(limits);
  return QueryWithControl(query, k, skip_index, stats, &control);
}

std::vector<Neighbor> KnnIndex::QueryWithControl(const Vector& query,
                                                 size_t k, size_t skip_index,
                                                 QueryStats* stats,
                                                 QueryControl* control) const {
  const bool metrics = obs::MetricsRegistry::Enabled();
  if (!metrics && !obs::Tracer::Enabled()) {
    // Metrics and tracing off: byte-for-byte the uninstrumented path, no
    // timing and no span bookkeeping.
    std::vector<Neighbor> out = QueryImpl(query, k, skip_index, stats, control);
    if (control != nullptr && control->stopped() && stats != nullptr) {
      stats->truncated = true;
    }
    return out;
  }
  obs::TraceSpan span(TraceName());
  span.AddArg("k", static_cast<double>(k));
  QueryStats local;
  Stopwatch watch;
  std::vector<Neighbor> out = QueryImpl(query, k, skip_index, &local, control);
  if (control != nullptr && control->stopped()) local.truncated = true;
  if (metrics) {
    Instrument().Record(local.distance_evaluations, local.nodes_visited,
                        local.candidates_refined, watch.ElapsedMicros(),
                        local.truncated);
    if (control != nullptr && control->deadline_exceeded()) {
      CountDeadlineExceeded();
    }
  }
  span.AddArg("distance_evaluations",
              static_cast<double>(local.distance_evaluations));
  if (local.truncated) span.AddArg("truncated", 1.0);
  if (stats != nullptr) stats->MergeFrom(local);
  return out;
}

std::vector<std::vector<Neighbor>> KnnIndex::QueryBatch(
    const Matrix& queries, size_t k, QueryStats* stats) const {
  const size_t n = queries.rows();
  std::vector<std::vector<Neighbor>> out(n);
  if (n == 0) return out;
  COHERE_CHECK_EQ(queries.cols(), dims());

  const size_t chunks = ParallelChunkCount(n, kBatchGrain);
  std::vector<QueryStats> partial(stats != nullptr ? chunks : 0);
  ParallelForIndexed(0, n, kBatchGrain,
                     [&](size_t chunk, size_t begin, size_t end) {
    QueryStats* local = stats != nullptr ? &partial[chunk] : nullptr;
    Vector query(queries.cols());
    for (size_t i = begin; i < end; ++i) {
      const double* src = queries.RowPtr(i);
      std::copy(src, src + queries.cols(), query.data());
      out[i] = Query(query, k, kNoSkip, local);
    }
  });
  if (stats != nullptr) {
    for (const QueryStats& p : partial) stats->MergeFrom(p);
  }
  return out;
}

std::vector<std::vector<Neighbor>> KnnIndex::QueryBatch(
    const Matrix& queries, size_t k, QueryStats* stats,
    const QueryLimits& limits) const {
  if (!limits.active()) return QueryBatch(queries, k, stats);

  const size_t n = queries.rows();
  std::vector<std::vector<Neighbor>> out(n);
  if (n == 0) return out;
  COHERE_CHECK_EQ(queries.cols(), dims());

  // One absolute deadline for the whole batch: rows started after expiry
  // stop at their first control check, so batch latency is bounded by the
  // budget plus one check interval per pool lane.
  const long long budget_us = QueryControl::DeadlineMicros(limits.deadline_us);
  const bool has_deadline = budget_us > 0;
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(budget_us);
  }

  const size_t chunks = ParallelChunkCount(n, kBatchGrain);
  std::vector<QueryStats> partial(stats != nullptr ? chunks : 0);
  ParallelForIndexed(0, n, kBatchGrain,
                     [&](size_t chunk, size_t begin, size_t end) {
    QueryStats* local = stats != nullptr ? &partial[chunk] : nullptr;
    Vector query(queries.cols());
    for (size_t i = begin; i < end; ++i) {
      const double* src = queries.RowPtr(i);
      std::copy(src, src + queries.cols(), query.data());
      QueryControl control(limits.cancel, deadline, has_deadline);
      out[i] = QueryWithControl(query, k, kNoSkip, local, &control);
    }
  });
  if (stats != nullptr) {
    for (const QueryStats& p : partial) stats->MergeFrom(p);
  }
  return out;
}

}  // namespace cohere
