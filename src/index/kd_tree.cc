#include "index/kd_tree.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace cohere {

KdTreeIndex::KdTreeIndex(std::shared_ptr<const BlockedMatrix> rows,
                         const Metric* metric, size_t leaf_size)
    : rows_(std::move(rows)), metric_(metric), leaf_size_(leaf_size) {
  COHERE_CHECK(rows_ != nullptr);
  COHERE_CHECK(metric_ != nullptr);
  COHERE_CHECK_MSG(metric_->IsTrueMetric(),
                   "kd-tree pruning requires a true metric");
  COHERE_CHECK_GE(leaf_size_, 1u);
  order_.resize(rows_->rows());
  std::iota(order_.begin(), order_.end(), size_t{0});
  if (!order_.empty()) BuildNode(0, order_.size());
}

KdTreeIndex::KdTreeIndex(Matrix data, const Metric* metric, size_t leaf_size)
    : KdTreeIndex(std::make_shared<BlockedMatrix>(data), metric, leaf_size) {}

size_t KdTreeIndex::BuildNode(size_t begin, size_t end) {
  const size_t node_index = nodes_.size();
  nodes_.emplace_back();
  const size_t d = rows_->cols();

  // Compute the bounding box of the points in [begin, end).
  Vector lo(d);
  Vector hi(d);
  {
    const double* first = rows_->RowPtr(order_[begin]);
    for (size_t j = 0; j < d; ++j) {
      lo[j] = first[j];
      hi[j] = first[j];
    }
    for (size_t i = begin + 1; i < end; ++i) {
      const double* row = rows_->RowPtr(order_[i]);
      for (size_t j = 0; j < d; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
  }

  // Split on the widest dimension; a box with zero extent becomes a leaf
  // regardless of size (all points identical).
  size_t split_dim = 0;
  double split_extent = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double extent = hi[j] - lo[j];
    if (extent > split_extent) {
      split_extent = extent;
      split_dim = j;
    }
  }

  if (end - begin <= leaf_size_ || split_extent == 0.0) {
    Node& leaf = nodes_[node_index];
    leaf.box_lo = std::move(lo);
    leaf.box_hi = std::move(hi);
    leaf.begin = begin;
    leaf.end = end;
    return node_index;
  }

  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(begin),
                   order_.begin() + static_cast<ptrdiff_t>(mid),
                   order_.begin() + static_cast<ptrdiff_t>(end),
                   [this, split_dim](size_t a, size_t b) {
                     return rows_->At(a, split_dim) < rows_->At(b, split_dim);
                   });

  // Children are built after this node; store indices afterwards because
  // recursion may reallocate `nodes_`.
  const size_t left = BuildNode(begin, mid);
  const size_t right = BuildNode(mid, end);
  Node& node = nodes_[node_index];
  node.box_lo = std::move(lo);
  node.box_hi = std::move(hi);
  node.begin = begin;
  node.end = end;
  node.left = left;
  node.right = right;
  return node_index;
}

double KdTreeIndex::BoxMinComparable(const Vector& query, const Node& node,
                                     Vector* scratch) const {
  // The closest point of an axis-aligned box to `query` is the per-dimension
  // clamp; any metric that is monotone per dimension attains its box minimum
  // there.
  Vector& clamped = *scratch;
  for (size_t j = 0; j < query.size(); ++j) {
    clamped[j] = std::clamp(query[j], node.box_lo[j], node.box_hi[j]);
  }
  return metric_->ComparableDistance(query, clamped);
}

std::vector<Neighbor> KdTreeIndex::QueryImpl(const Vector& query, size_t k,
                                             size_t skip_index,
                                             QueryStats* stats,
                                             QueryControl* control) const {
  COHERE_CHECK_EQ(query.size(), rows_->cols());
  KnnCollector collector(k);
  if (nodes_.empty() || k == 0) return collector.Take();

  Vector scratch(rows_->cols());

  // Best-first traversal on (box min-distance, node).
  using Entry = std::pair<double, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> frontier;
  frontier.emplace(BoxMinComparable(query, nodes_[0], &scratch), 0);

  // Work counts accumulate in locals (registers — their address never
  // escapes, so the opaque metric calls can't force a spill) and reach
  // `stats` in one add; the hot loops stay free of pointer-indirect stores.
  uint64_t nodes_visited = 0;
  uint64_t distance_evaluations = 0;

  while (!frontier.empty()) {
    // One control check per node keeps the per-distance cost zero while
    // still bounding overshoot by a leaf's worth of evaluations.
    if (control != nullptr && control->ShouldStop()) break;
    const auto [bound, node_index] = frontier.top();
    frontier.pop();
    if (collector.Full() && bound > collector.Threshold()) {
      // Every remaining node is at least this far: done.
      break;
    }
    const Node& node = nodes_[node_index];
    ++nodes_visited;

    if (node.IsLeaf()) {
      for (size_t i = node.begin; i < node.end; ++i) {
        const size_t point = order_[i];
        if (point == skip_index) continue;
        const double comparable = metric_->ComparableDistance(
            query.data(), rows_->RowPtr(point), rows_->cols());
        ++distance_evaluations;
        collector.Offer(point, comparable);
      }
      continue;
    }
    frontier.emplace(BoxMinComparable(query, nodes_[node.left], &scratch),
                     node.left);
    frontier.emplace(BoxMinComparable(query, nodes_[node.right], &scratch),
                     node.right);
  }
  if (stats != nullptr) {
    stats->nodes_visited += nodes_visited;
    stats->distance_evaluations += distance_evaluations;
  }

  std::vector<Neighbor> out = collector.Take();
  for (Neighbor& n : out) {
    n.distance = metric_->ComparableToActual(n.distance);
  }
  return out;
}

}  // namespace cohere
