#ifndef COHERE_INDEX_METRIC_H_
#define COHERE_INDEX_METRIC_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/check.h"
#include "linalg/vector.h"

namespace cohere {

/// Identifiers for the built-in distance functions.
enum class MetricKind {
  kEuclidean,   // L2
  kManhattan,   // L1
  kChebyshev,   // L-infinity
  kFractional,  // Lp with 0 < p < 1 (Aggarwal/Hinneburg/Keim)
  kCosine,      // 1 - cosine similarity
};

/// Distance function over equal-dimension vectors.
///
/// Implementations must be symmetric and non-negative with D(x, x) = 0;
/// kFractional and kCosine are not triangle-inequality metrics, which the
/// kd-tree rejects (its pruning bound requires a true metric).
///
/// The primitive operations take raw buffers so index inner loops can
/// evaluate distances straight against matrix row storage without
/// materializing a Vector per candidate; the Vector overloads are
/// size-checked conveniences over the same code.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Distance between two n-dimensional points given as raw buffers.
  virtual double Distance(const double* a, const double* b,
                          size_t n) const = 0;

  /// Distance raised to whatever power the implementation uses internally
  /// for comparisons. Monotone in Distance; cheaper for L2 (no sqrt).
  virtual double ComparableDistance(const double* a, const double* b,
                                    size_t n) const {
    return Distance(a, b, n);
  }

  /// Distance between two points of equal dimension.
  double Distance(const Vector& a, const Vector& b) const {
    COHERE_CHECK_EQ(a.size(), b.size());
    return Distance(a.data(), b.data(), a.size());
  }

  /// Comparable-form distance between two points of equal dimension.
  double ComparableDistance(const Vector& a, const Vector& b) const {
    COHERE_CHECK_EQ(a.size(), b.size());
    return ComparableDistance(a.data(), b.data(), a.size());
  }

  /// Converts a ComparableDistance back to a true distance.
  virtual double ComparableToActual(double comparable) const {
    return comparable;
  }

  /// Comparable distances from `q` to `n_rows` rows stored contiguously at
  /// stride `n` (a BlockedMatrix block or any row-major slab): out[r] =
  /// ComparableDistance(q, rows + r * n, n). The default loop lets any
  /// backend migrate incrementally; the built-in metrics override it with
  /// runtime-dispatched SIMD kernels whose results are bitwise identical to
  /// this loop (see src/simd/kernels.h for the contract).
  virtual void ComparableDistanceBlock(const double* q, const double* rows,
                                       size_t n_rows, size_t n,
                                       double* out) const {
    for (size_t r = 0; r < n_rows; ++r) {
      out[r] = ComparableDistance(q, rows + r * n, n);
    }
  }

  /// Actual (not comparable-form) distances for a block, same layout rules
  /// as ComparableDistanceBlock.
  virtual void DistanceBlock(const double* q, const double* rows,
                             size_t n_rows, size_t n, double* out) const {
    for (size_t r = 0; r < n_rows; ++r) {
      out[r] = Distance(q, rows + r * n, n);
    }
  }

  virtual MetricKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Whether the triangle inequality holds (required by kd-tree pruning).
  virtual bool IsTrueMetric() const { return true; }
};

/// Creates one of the built-in metrics. `p` is only used by kFractional and
/// must lie in (0, 1).
///
/// `fast_math` opts single-pair distance evaluations into the vectorized
/// fast kernels (EngineOptions::fast_math): faster on tree-shaped access
/// patterns, but the summation order changes, so results may differ from
/// the default mode in the last ulp and are NOT stable across dispatch
/// levels. Default mode stays bit-identical everywhere. The fractional
/// metric ignores the flag (std::pow keeps it scalar).
std::unique_ptr<Metric> MakeMetric(MetricKind kind, double p = 0.5,
                                   bool fast_math = false);

}  // namespace cohere

#endif  // COHERE_INDEX_METRIC_H_
