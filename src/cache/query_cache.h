#ifndef COHERE_CACHE_QUERY_CACHE_H_
#define COHERE_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/knn.h"
#include "linalg/vector.h"

namespace cohere {
namespace cache {

class CacheManager;

/// FNV-1a over raw bytes; the fingerprint primitive behind every cache key.
uint64_t FingerprintBytes(const void* data, size_t size,
                          uint64_t seed = 14695981039346656037ULL);

/// Fingerprint of a query vector: FNV-1a over the dimensionality followed by
/// the raw IEEE-754 bytes, so equal-prefix vectors of different lengths do
/// not collide trivially. Bitwise-equal vectors (including signed zeros and
/// NaN payloads) fingerprint identically; nothing else is guaranteed to.
uint64_t FingerprintVector(const Vector& v);

/// Full identity of one cached k-NN result list. The snapshot version is the
/// invalidation mechanism: a COW publish bumps the version, so entries keyed
/// on the old version can never be looked up again and simply age out under
/// eviction — no write-side coordination with the RCU publish path.
struct CacheKey {
  uint64_t snapshot_version = 0;
  /// FNV-1a of the metric's name() — part of the key schema so result lists
  /// produced under different metrics can never alias.
  uint64_t metric_hash = 0;
  uint64_t query_fingerprint = 0;
  uint32_t k = 0;
  /// Shards probed per query (ServingCoreOptions::probe_shards); probing
  /// width changes the answer on multi-shard snapshots.
  uint32_t probes = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Mixes every key field into the shard/bucket hash.
uint64_t HashKey(const CacheKey& key);

struct ResultCacheOptions {
  /// Metric/trace scope of the owning serving core (labels only).
  std::string scope = "cache";
  /// Hard byte cap; inserts evict (CLOCK order) to stay under it. A zero
  /// budget accepts nothing.
  size_t budget_bytes = 0;
  /// Lock stripes; rounded up to a power of two. Readers only contend when
  /// their keys land on the same stripe.
  size_t num_shards = 8;
};

/// Monotonic counters plus current occupancy, merged across shards.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts dropped without storing (over-budget single entries, zero
  /// budget, or the cache.insert.pressure fault point firing).
  uint64_t rejected = 0;
  size_t bytes = 0;
  size_t entries = 0;
};

/// Sharded, memory-budgeted cache of hot k-NN result lists and projected
/// query vectors, keyed by CacheKey. Designed to sit beside the RCU query
/// path: lookups take one shard mutex for a hash probe and a copy-out, so
/// readers on different stripes never contend and writers never block the
/// snapshot publish path.
///
/// Eviction is CLOCK-style second chance: entries enter a per-shard clock
/// ring at insert, a hit sets their reference bit, and the eviction hand
/// clears bits as it sweeps, reclaiming the first entry it passes twice. A
/// small per-shard frequency buffer (a lossy ring of recently hit hashes,
/// written with relaxed stores outside the shard lock) additionally hints
/// the hand away from keys that were hot a moment ago even when their
/// reference bit was already spent.
///
/// Projected query vectors are cached in a second per-shard table keyed on
/// (snapshot_version, query_fingerprint, metric_hash) — deliberately without
/// k/probes, so a repeat of a hot query with a different k still skips the
/// original-space projection. Both tables charge the same shard budget.
///
/// Thread safety: all methods are safe from any number of threads.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True and fills `*out` when `key` is present; false (counting a miss)
  /// otherwise. Hits set the entry's reference bit and feed the frequency
  /// buffer.
  bool Lookup(const CacheKey& key, std::vector<Neighbor>* out);

  /// Stores a result list under `key`, evicting colder entries as needed to
  /// respect the budget. Entries larger than the whole shard budget — and
  /// every insert while the cache.insert.pressure fault point fires — are
  /// rejected (the cache stays correct, only colder). Re-inserting an
  /// existing key replaces its value.
  void Insert(const CacheKey& key, const std::vector<Neighbor>& neighbors);

  /// True and fills `*out` when a projected vector for this (version,
  /// fingerprint, metric) is cached, regardless of which k stored it.
  bool LookupProjection(uint64_t snapshot_version, uint64_t query_fingerprint,
                        uint64_t metric_hash, Vector* out);

  /// Caches a projected query vector (same budget/eviction rules as result
  /// inserts, including the pressure fault point).
  void InsertProjection(uint64_t snapshot_version, uint64_t query_fingerprint,
                        uint64_t metric_hash, const Vector& projected);

  /// Retargets the byte budget (the manager's rebalance hook), evicting down
  /// immediately when shrinking.
  void SetBudget(size_t bytes);

  size_t budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  /// Merged counters and occupancy across shards.
  ResultCacheStats Stats() const;

  /// Current resident bytes across shards.
  size_t bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

  /// Drops every entry (budget unchanged).
  void Clear();

  const std::string& scope() const { return options_.scope; }

 private:
  friend class CacheManager;

  // Slots in the per-shard frequency buffer. Small on purpose: it only needs
  // to remember the working set of the last few dozen hits to steer the
  // clock hand, and eviction scans it linearly.
  static constexpr size_t kFrequencySlots = 32;

  struct ResultEntry {
    CacheKey key;
    std::vector<Neighbor> neighbors;
    size_t charge = 0;
    bool referenced = false;
  };

  struct ProjectionEntry {
    uint64_t snapshot_version = 0;
    uint64_t query_fingerprint = 0;
    uint64_t metric_hash = 0;
    Vector projected;
    size_t charge = 0;
    bool referenced = false;
  };

  /// One CLOCK-ring slot: which table the hash lives in plus the hash.
  struct ClockRef {
    uint64_t hash = 0;
    bool projection = false;
  };

  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, ResultEntry> results;
    std::unordered_map<uint64_t, ProjectionEntry> projections;
    // Insertion-ordered eviction ring; front is the clock hand.
    std::deque<ClockRef> clock;
    size_t bytes = 0;
    // Lossy frequency buffer: recently hit hashes, relaxed and lock-free. A
    // stale read only costs one extra second chance during eviction.
    std::atomic<uint64_t> frequency[kFrequencySlots] = {};
    std::atomic<size_t> frequency_pos{0};
  };

  Shard& ShardFor(uint64_t hash) {
    // shards_.size() is a power of two; mix the high bits down first so
    // shard choice is not just the bucket bits the maps also use.
    const uint64_t mixed = hash ^ (hash >> 32);
    return shards_[mixed & (shards_.size() - 1)];
  }

  size_t PerShardBudget() const {
    return budget_bytes_.load(std::memory_order_relaxed) / shards_.size();
  }

  void NoteHot(Shard& shard, uint64_t hash);
  bool HintedHot(const Shard& shard, uint64_t hash) const;
  /// Evicts under `shard.mu` until the shard holds at most `target` bytes.
  void EvictLocked(Shard& shard, size_t target);
  /// True when a `charge`-byte insert is admissible (fits the shard budget
  /// and the pressure fault point did not fire); evicts to make room.
  bool AdmitLocked(Shard& shard, size_t charge);

  void AccountBytes(ptrdiff_t byte_delta, ptrdiff_t entry_delta);

  ResultCacheOptions options_;
  std::vector<Shard> shards_;
  std::atomic<size_t> budget_bytes_{0};
  std::atomic<size_t> resident_bytes_{0};
  std::atomic<size_t> resident_entries_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_{0};

  // Set by the manager so occupancy deltas and eviction pressure roll up
  // into the process-wide gauges and the rebalance trigger; null for
  // standalone caches.
  CacheManager* manager_ = nullptr;
};

}  // namespace cache
}  // namespace cohere

#endif  // COHERE_CACHE_QUERY_CACHE_H_
