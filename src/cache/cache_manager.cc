#include "cache/cache_manager.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace cohere {
namespace cache {
namespace {

size_t EnvTotalBudget() {
  const char* env = std::getenv("COHERE_CACHE_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<size_t>(value);
}

void SetGauge(const char* name, double value) {
  if (!obs::MetricsRegistry::Enabled()) return;
  obs::MetricsRegistry::Global().GetGauge(name)->Set(value);
}

// The occupancy gauges sit on the insert/evict path; resolve them once
// (gauge pointers have process lifetime) instead of a registry lookup per
// delta.
void SetOccupancyGauges(double bytes, double entries) {
  if (!obs::MetricsRegistry::Enabled()) return;
  static obs::Gauge* bytes_gauge =
      obs::MetricsRegistry::Global().GetGauge("cache.bytes");
  static obs::Gauge* entries_gauge =
      obs::MetricsRegistry::Global().GetGauge("cache.entries");
  bytes_gauge->Set(bytes);
  entries_gauge->Set(entries);
}

}  // namespace

CacheManager& CacheManager::Global() {
  // Leaked on purpose: caches resolved from it may outlive static teardown.
  static CacheManager* manager = new CacheManager();
  return *manager;
}

CacheManager::CacheManager() : total_budget_(EnvTotalBudget()) {}

std::shared_ptr<ResultCache> CacheManager::CreateCache(
    const std::string& scope, size_t requested_bytes) {
  ResultCacheOptions options;
  options.scope = scope;
  options.budget_bytes = requested_bytes;
  auto cache = std::make_shared<ResultCache>(std::move(options));
  cache->manager_ = this;
  std::lock_guard<std::mutex> lock(mu_);
  Registration reg;
  reg.cache = cache;
  reg.requested_bytes = requested_bytes;
  reg.scope = scope;
  caches_.push_back(std::move(reg));
  RebalanceLocked();
  return cache;
}

void CacheManager::SetTotalBudget(size_t bytes) {
  total_budget_.store(bytes, std::memory_order_relaxed);
  Rebalance();
}

void CacheManager::Rebalance() {
  std::lock_guard<std::mutex> lock(mu_);
  RebalanceLocked();
}

void CacheManager::RebalanceLocked() {
  // Prune retired caches first; their budget returns to the pool.
  std::vector<std::shared_ptr<ResultCache>> live;
  live.reserve(caches_.size());
  size_t write = 0;
  for (size_t read = 0; read < caches_.size(); ++read) {
    std::shared_ptr<ResultCache> cache = caches_[read].cache.lock();
    if (cache == nullptr) continue;
    live.push_back(std::move(cache));
    // Guard the no-gap case: self-move-assignment would empty the weak_ptr.
    if (write != read) caches_[write] = std::move(caches_[read]);
    ++write;
  }
  caches_.resize(write);
  ++rebalances_;

  const size_t total = total_budget_.load(std::memory_order_relaxed);
  size_t granted = 0;
  if (total == 0) {
    // Uncapped: every cache keeps exactly what it asked for.
    for (size_t i = 0; i < caches_.size(); ++i) {
      live[i]->SetBudget(caches_[i].requested_bytes);
      granted += caches_[i].requested_bytes;
    }
  } else if (!caches_.empty()) {
    // Demand-weighted split of the global cap: each cache's weight is its
    // request scaled by the hits it served since the last rebalance, so a
    // hot engine's cache grows at the expense of idle ones. The kMinGrant
    // floor keeps starved caches able to earn budget back (the sum may
    // overshoot the cap by at most caches * kMinGrant).
    std::vector<double> weights(caches_.size());
    double weight_sum = 0.0;
    for (size_t i = 0; i < caches_.size(); ++i) {
      const uint64_t hits_now = live[i]->Stats().hits;
      const uint64_t delta = hits_now - caches_[i].hits_at_last_rebalance;
      caches_[i].hits_at_last_rebalance = hits_now;
      weights[i] = static_cast<double>(caches_[i].requested_bytes) *
                   (1.0 + static_cast<double>(delta));
      weight_sum += weights[i];
    }
    for (size_t i = 0; i < caches_.size(); ++i) {
      size_t grant = weight_sum > 0.0
                         ? static_cast<size_t>(static_cast<double>(total) *
                                               (weights[i] / weight_sum))
                         : total / caches_.size();
      if (grant < kMinGrant) grant = kMinGrant;
      live[i]->SetBudget(grant);
      granted += grant;
    }
  }
  SetGauge("cache.caches", static_cast<double>(caches_.size()));
  SetGauge("cache.budget_bytes", static_cast<double>(granted));
}

CacheManager::ManagerStats CacheManager::GetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  ManagerStats out;
  out.total_budget = total_budget_.load(std::memory_order_relaxed);
  out.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  out.rebalances = rebalances_;
  for (Registration& reg : caches_) {
    std::shared_ptr<ResultCache> cache = reg.cache.lock();
    if (cache == nullptr) continue;
    ++out.caches;
    out.granted_bytes += cache->budget_bytes();
  }
  return out;
}

void CacheManager::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.clear();
  total_budget_.store(0, std::memory_order_relaxed);
  pressure_events_.store(0, std::memory_order_relaxed);
}

void CacheManager::OnOccupancyDelta(ptrdiff_t byte_delta,
                                    ptrdiff_t entry_delta) {
  const size_t bytes =
      resident_bytes_.fetch_add(static_cast<size_t>(byte_delta),
                                std::memory_order_relaxed) +
      static_cast<size_t>(byte_delta);
  const size_t entries =
      resident_entries_.fetch_add(static_cast<size_t>(entry_delta),
                                  std::memory_order_relaxed) +
      static_cast<size_t>(entry_delta);
  SetOccupancyGauges(static_cast<double>(bytes),
                     static_cast<double>(entries));
}

void CacheManager::OnEvictionPressure() {
  const uint64_t events =
      pressure_events_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Only a capped pool has anything to shift between caches.
  if (events % kPressureInterval == 0 &&
      total_budget_.load(std::memory_order_relaxed) > 0) {
    Rebalance();
  }
}

}  // namespace cache
}  // namespace cohere
