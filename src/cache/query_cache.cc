#include "cache/query_cache.h"

#include <cstring>
#include <utility>

#include "cache/cache_manager.h"
#include "common/fault.h"
#include "obs/metrics.h"

namespace cohere {
namespace cache {
namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Hash-map node, bucket, and clock-ring overhead charged per entry on top of
// the payload bytes. An estimate on purpose: the budget bounds footprint to
// within a small constant factor, it is not an allocator audit.
constexpr size_t kEntryOverhead = 48;

uint64_t MixU64(uint64_t h, uint64_t v) {
  return FingerprintBytes(&v, sizeof(v), h);
}

// Registry instruments, resolved once per site (process lifetime pointers,
// snapshot.cc pattern) and updated only while metrics are enabled — the
// cache's own atomic stats are always live regardless.
#define COHERE_CACHE_COUNT(counter_name, delta)                            \
  do {                                                                     \
    const uint64_t cohere_cache_delta = (delta);                           \
    if (obs::MetricsRegistry::Enabled() && cohere_cache_delta > 0) {       \
      static obs::Counter* cohere_cache_counter =                          \
          obs::MetricsRegistry::Global().GetCounter(counter_name);         \
      cohere_cache_counter->Increment(cohere_cache_delta);                 \
    }                                                                      \
  } while (false)

}  // namespace

uint64_t FingerprintBytes(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FingerprintVector(const Vector& v) {
  const uint64_t dims = v.size();
  uint64_t hash = FingerprintBytes(&dims, sizeof(dims));
  return FingerprintBytes(v.data(), v.size() * sizeof(double), hash);
}

uint64_t HashKey(const CacheKey& key) {
  uint64_t hash = key.query_fingerprint;
  hash = MixU64(hash, key.snapshot_version);
  hash = MixU64(hash, key.metric_hash);
  hash = MixU64(hash, (uint64_t{key.k} << 32) | key.probes);
  return hash;
}

namespace {

uint64_t ProjectionHash(uint64_t snapshot_version, uint64_t query_fingerprint,
                        uint64_t metric_hash) {
  uint64_t hash = query_fingerprint;
  hash = MixU64(hash, snapshot_version);
  hash = MixU64(hash, metric_hash);
  return hash;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(std::move(options)),
      shards_(RoundUpPow2(options_.num_shards == 0 ? 1 : options_.num_shards)),
      budget_bytes_(options_.budget_bytes) {}

void ResultCache::NoteHot(Shard& shard, uint64_t hash) {
  const size_t pos =
      shard.frequency_pos.fetch_add(1, std::memory_order_relaxed) %
      kFrequencySlots;
  shard.frequency[pos].store(hash, std::memory_order_relaxed);
}

bool ResultCache::HintedHot(const Shard& shard, uint64_t hash) const {
  for (size_t i = 0; i < kFrequencySlots; ++i) {
    if (shard.frequency[i].load(std::memory_order_relaxed) == hash) {
      return true;
    }
  }
  return false;
}

void ResultCache::EvictLocked(Shard& shard, size_t target) {
  // Bounded sweep: after two full passes every reference bit has been
  // cleared, so the hand force-evicts regardless of the frequency hint (a
  // uniformly hot shard must still respect the budget).
  size_t second_chances = shard.clock.size() * 2 + 2;
  uint64_t evicted = 0;
  while (shard.bytes > target && !shard.clock.empty()) {
    const ClockRef ref = shard.clock.front();
    shard.clock.pop_front();
    const bool force = second_chances == 0;
    if (second_chances > 0) --second_chances;
    size_t charge = 0;
    if (ref.projection) {
      auto it = shard.projections.find(ref.hash);
      if (it == shard.projections.end()) continue;  // replaced or cleared
      if (!force &&
          (it->second.referenced || HintedHot(shard, ref.hash))) {
        it->second.referenced = false;
        shard.clock.push_back(ref);
        continue;
      }
      charge = it->second.charge;
      shard.projections.erase(it);
    } else {
      auto it = shard.results.find(ref.hash);
      if (it == shard.results.end()) continue;
      if (!force &&
          (it->second.referenced || HintedHot(shard, ref.hash))) {
        it->second.referenced = false;
        shard.clock.push_back(ref);
        continue;
      }
      charge = it->second.charge;
      shard.results.erase(it);
    }
    shard.bytes -= charge;
    AccountBytes(-static_cast<ptrdiff_t>(charge), -1);
    ++evicted;
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.evictions", evicted);
  }
}

bool ResultCache::AdmitLocked(Shard& shard, size_t charge) {
  const size_t budget = PerShardBudget();
  if (charge > budget) return false;
  EvictLocked(shard, budget - charge);
  return true;
}

void ResultCache::AccountBytes(ptrdiff_t byte_delta, ptrdiff_t entry_delta) {
  resident_bytes_.fetch_add(static_cast<size_t>(byte_delta),
                            std::memory_order_relaxed);
  resident_entries_.fetch_add(static_cast<size_t>(entry_delta),
                              std::memory_order_relaxed);
  if (manager_ != nullptr) {
    manager_->OnOccupancyDelta(byte_delta, entry_delta);
  }
}

bool ResultCache::Lookup(const CacheKey& key, std::vector<Neighbor>* out) {
  const uint64_t hash = HashKey(key);
  Shard& shard = ShardFor(hash);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.results.find(hash);
    // The full key disambiguates 64-bit hash collisions: a colliding probe
    // is a miss, never a wrong answer.
    if (it != shard.results.end() && it->second.key == key) {
      *out = it->second.neighbors;
      it->second.referenced = true;
      hit = true;
    }
  }
  if (hit) {
    NoteHot(shard, hash);
    hits_.fetch_add(1, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.hits", 1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.misses", 1);
  }
  return hit;
}

void ResultCache::Insert(const CacheKey& key,
                         const std::vector<Neighbor>& neighbors) {
  // The pressure point models allocation pressure: the store is dropped and
  // the cache simply stays colder — correctness never depends on an insert
  // landing.
  if (COHERE_INJECT_FAULT(fault::kPointCacheInsertPressure)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.insert_rejected", 1);
    return;
  }
  const uint64_t hash = HashKey(key);
  const size_t charge =
      sizeof(ResultEntry) + neighbors.size() * sizeof(Neighbor) +
      kEntryOverhead;
  Shard& shard = ShardFor(hash);
  bool rejected = false;
  bool evicted_for_room = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.results.find(hash);
    if (it != shard.results.end()) {
      // Replacement (same key, or a colliding hash: last writer wins — the
      // full key stored with the entry keeps lookups exact either way).
      shard.bytes -= it->second.charge;
      AccountBytes(-static_cast<ptrdiff_t>(it->second.charge), 0);
      it->second.key = key;
      it->second.neighbors = neighbors;
      it->second.charge = charge;
      it->second.referenced = true;
      shard.bytes += charge;
      AccountBytes(static_cast<ptrdiff_t>(charge), 0);
      EvictLocked(shard, PerShardBudget());
    } else {
      const bool needs_room = shard.bytes + charge > PerShardBudget();
      if (!AdmitLocked(shard, charge)) {
        rejected = true;
      } else {
        evicted_for_room = needs_room;
        ResultEntry entry;
        entry.key = key;
        entry.neighbors = neighbors;
        entry.charge = charge;
        shard.results.emplace(hash, std::move(entry));
        shard.clock.push_back({hash, /*projection=*/false});
        shard.bytes += charge;
        AccountBytes(static_cast<ptrdiff_t>(charge), 1);
      }
    }
  }
  if (rejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.insert_rejected", 1);
    return;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  COHERE_CACHE_COUNT("cache.insertions", 1);
  // Pressure (we evicted to admit) feeds the manager's rebalance trigger;
  // reported outside the shard lock so the manager may take its own mutex.
  if (evicted_for_room && manager_ != nullptr) {
    manager_->OnEvictionPressure();
  }
}

bool ResultCache::LookupProjection(uint64_t snapshot_version,
                                   uint64_t query_fingerprint,
                                   uint64_t metric_hash, Vector* out) {
  const uint64_t hash =
      ProjectionHash(snapshot_version, query_fingerprint, metric_hash);
  Shard& shard = ShardFor(hash);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.projections.find(hash);
    if (it != shard.projections.end() &&
        it->second.snapshot_version == snapshot_version &&
        it->second.query_fingerprint == query_fingerprint &&
        it->second.metric_hash == metric_hash) {
      *out = it->second.projected;
      it->second.referenced = true;
      hit = true;
    }
  }
  if (hit) NoteHot(shard, hash);
  return hit;
}

void ResultCache::InsertProjection(uint64_t snapshot_version,
                                   uint64_t query_fingerprint,
                                   uint64_t metric_hash,
                                   const Vector& projected) {
  if (COHERE_INJECT_FAULT(fault::kPointCacheInsertPressure)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.insert_rejected", 1);
    return;
  }
  const uint64_t hash =
      ProjectionHash(snapshot_version, query_fingerprint, metric_hash);
  const size_t charge = sizeof(ProjectionEntry) +
                        projected.size() * sizeof(double) + kEntryOverhead;
  Shard& shard = ShardFor(hash);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.projections.find(hash);
    if (it != shard.projections.end()) {
      shard.bytes -= it->second.charge;
      AccountBytes(-static_cast<ptrdiff_t>(it->second.charge), 0);
      it->second.snapshot_version = snapshot_version;
      it->second.query_fingerprint = query_fingerprint;
      it->second.metric_hash = metric_hash;
      it->second.projected = projected;
      it->second.charge = charge;
      it->second.referenced = true;
      shard.bytes += charge;
      AccountBytes(static_cast<ptrdiff_t>(charge), 0);
      EvictLocked(shard, PerShardBudget());
    } else if (!AdmitLocked(shard, charge)) {
      rejected = true;
    } else {
      ProjectionEntry entry;
      entry.snapshot_version = snapshot_version;
      entry.query_fingerprint = query_fingerprint;
      entry.metric_hash = metric_hash;
      entry.projected = projected;
      entry.charge = charge;
      shard.projections.emplace(hash, std::move(entry));
      shard.clock.push_back({hash, /*projection=*/true});
      shard.bytes += charge;
      AccountBytes(static_cast<ptrdiff_t>(charge), 1);
    }
  }
  if (rejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    COHERE_CACHE_COUNT("cache.insert_rejected", 1);
    return;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  COHERE_CACHE_COUNT("cache.insertions", 1);
}

void ResultCache::SetBudget(size_t bytes) {
  budget_bytes_.store(bytes, std::memory_order_relaxed);
  const size_t per_shard = bytes / shards_.size();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictLocked(shard, per_shard);
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.bytes = resident_bytes_.load(std::memory_order_relaxed);
  out.entries = resident_entries_.load(std::memory_order_relaxed);
  return out;
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const ptrdiff_t entries = static_cast<ptrdiff_t>(
        shard.results.size() + shard.projections.size());
    AccountBytes(-static_cast<ptrdiff_t>(shard.bytes), -entries);
    shard.results.clear();
    shard.projections.clear();
    shard.clock.clear();
    shard.bytes = 0;
  }
}

}  // namespace cache
}  // namespace cohere
