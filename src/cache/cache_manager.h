#ifndef COHERE_CACHE_CACHE_MANAGER_H_
#define COHERE_CACHE_CACHE_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/query_cache.h"

namespace cohere {
namespace cache {

/// Process-wide owner of every query-result cache: each serving core asks it
/// for a ResultCache with a *requested* byte budget, and the manager decides
/// what each cache is actually *granted*.
///
/// With no global cap (the default) every cache is granted exactly what it
/// requested. Once a total budget is set — programmatically or through the
/// `COHERE_CACHE_BUDGET` environment variable (bytes, read at first use) —
/// the total is divided across the live caches proportionally to demand
/// (request size weighted by observed hits), and re-divided whenever a cache
/// reports sustained eviction pressure, so a hot engine's cache grows at the
/// expense of idle ones without any cache ever exceeding the global cap.
///
/// The manager also owns the process-wide occupancy gauges (`cache.bytes`,
/// `cache.entries`, `cache.budget_bytes`, `cache.caches`): caches report
/// occupancy deltas through it with lock-free counters, so the roll-up never
/// takes the registration mutex on the query path.
class CacheManager {
 public:
  /// The process-wide instance (created on first use, never destroyed).
  static CacheManager& Global();

  CacheManager();
  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  /// Creates a new cache for one serving core. `scope` labels it in stats;
  /// `requested_bytes` is its demand, granted in full while no total budget
  /// is set. Caches are independent — two cores with the same scope get
  /// distinct caches. The manager keeps only a weak reference: dropping the
  /// returned pointer retires the cache at the next rebalance.
  std::shared_ptr<ResultCache> CreateCache(const std::string& scope,
                                           size_t requested_bytes);

  /// Sets the global byte cap divided across all caches (0 restores
  /// uncapped grant-what-was-requested behavior) and rebalances.
  void SetTotalBudget(size_t bytes);

  size_t total_budget() const {
    return total_budget_.load(std::memory_order_relaxed);
  }

  /// Re-divides the budget across live caches now (also runs automatically
  /// under sustained eviction pressure).
  void Rebalance();

  struct ManagerStats {
    size_t caches = 0;          ///< Live registered caches.
    size_t total_budget = 0;    ///< Global cap; 0 when uncapped.
    size_t granted_bytes = 0;   ///< Sum of per-cache budgets.
    size_t resident_bytes = 0;  ///< Sum of per-cache occupancy.
    uint64_t rebalances = 0;
  };
  ManagerStats GetStats();

  /// Test hook: forgets every registered cache and restores the uncapped
  /// default. Live caches keep serving with their current budgets.
  void ResetForTest();

 private:
  friend class ResultCache;

  struct Registration {
    std::weak_ptr<ResultCache> cache;
    size_t requested_bytes = 0;
    std::string scope;
    uint64_t hits_at_last_rebalance = 0;
  };

  // Eviction-pressure events between automatic rebalances.
  static constexpr uint64_t kPressureInterval = 256;
  // No cache is ever granted less than this (a starved cache could
  // otherwise never build the hit history that would earn budget back).
  static constexpr size_t kMinGrant = 4096;

  /// Lock-free occupancy roll-up from caches (updates the global gauges).
  void OnOccupancyDelta(ptrdiff_t byte_delta, ptrdiff_t entry_delta);
  /// Lock-free pressure signal from caches; triggers a rebalance every
  /// kPressureInterval events. Never called with a shard lock held.
  void OnEvictionPressure();

  void RebalanceLocked();

  std::mutex mu_;
  std::vector<Registration> caches_;
  uint64_t rebalances_ = 0;

  std::atomic<size_t> total_budget_{0};
  std::atomic<size_t> resident_bytes_{0};
  std::atomic<size_t> resident_entries_{0};
  std::atomic<uint64_t> pressure_events_{0};
};

}  // namespace cache
}  // namespace cohere

#endif  // COHERE_CACHE_CACHE_MANAGER_H_
