#include "cluster/projected.h"

#include <algorithm>
#include <limits>

#include "cluster/kmeans.h"
#include "common/check.h"
#include "linalg/symmetric_eigen.h"
#include "stats/covariance.h"

namespace cohere {
namespace {

// Centroid of the listed rows.
Vector MemberCentroid(const Matrix& data, const std::vector<size_t>& members) {
  const size_t d = data.cols();
  Vector centroid(d);
  for (size_t member : members) {
    const double* row = data.RowPtr(member);
    for (size_t j = 0; j < d; ++j) centroid[j] += row[j];
  }
  if (!members.empty()) centroid /= static_cast<double>(members.size());
  return centroid;
}

// Least-spread eigenbasis (d x l) of the listed rows plus the projected
// energy (sum of the l smallest eigenvalues = mean squared projected
// deviation from the centroid). Returns false when the cluster is too small
// to define a covariance; `*basis` is left untouched and `*energy` set from
// the existing basis.
bool FitLeastSpreadBasis(const Matrix& data,
                         const std::vector<size_t>& members, size_t l,
                         Matrix* basis, double* energy) {
  if (members.size() < 2) {
    if (energy != nullptr) *energy = 0.0;
    return false;
  }
  Matrix member_rows = data.SelectRows(members);
  Result<EigenDecomposition> eig =
      SymmetricEigen(CovarianceMatrix(member_rows));
  if (!eig.ok()) return false;
  const size_t d = data.cols();
  std::vector<size_t> least(l);
  double spread = 0.0;
  for (size_t i = 0; i < l; ++i) {
    least[i] = d - l + i;
    spread += std::max(eig->eigenvalues[d - l + i], 0.0);
  }
  *basis = eig->eigenvectors.SelectCols(least);
  if (energy != nullptr) *energy = spread;
  return true;
}

// Projected energy per member of a (hypothetically merged) member list.
double MergedEnergy(const Matrix& data, const std::vector<size_t>& members,
                    size_t l) {
  Matrix basis;
  double energy = std::numeric_limits<double>::infinity();
  if (!FitLeastSpreadBasis(data, members, l, &basis, &energy)) {
    return 0.0;  // tiny unions are trivially tight
  }
  return energy;
}

// Reassigns every point to its nearest cluster by projected distance and
// rebuilds member lists. Returns whether any assignment changed; accumulates
// the mean projected energy into `*mean_energy`.
bool AssignAll(const Matrix& data, std::vector<ProjectedCluster>* clusters,
               std::vector<size_t>* assignment, double* mean_energy) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  bool changed = false;
  double energy = 0.0;
  for (ProjectedCluster& cluster : *clusters) cluster.members.clear();
  Vector point(d);
  for (size_t i = 0; i < n; ++i) {
    const double* src = data.RowPtr(i);
    std::copy(src, src + d, point.data());
    const size_t best = NearestProjectedCluster(*clusters, point);
    energy += ProjectedSquaredDistance(point, (*clusters)[best]);
    if (best != (*assignment)[i]) {
      (*assignment)[i] = best;
      changed = true;
    }
    (*clusters)[best].members.push_back(i);
  }
  *mean_energy = energy / static_cast<double>(n);
  return changed;
}

// Recomputes centroid and basis of every non-empty cluster.
void RefitAll(const Matrix& data, size_t l,
              std::vector<ProjectedCluster>* clusters) {
  for (ProjectedCluster& cluster : *clusters) {
    if (cluster.members.empty()) continue;
    cluster.centroid = MemberCentroid(data, cluster.members);
    FitLeastSpreadBasis(data, cluster.members, l, &cluster.basis, nullptr);
  }
}

// Drops empty clusters, compacting assignments.
void DropEmpty(std::vector<ProjectedCluster>* clusters,
               std::vector<size_t>* assignment) {
  std::vector<size_t> remap(clusters->size(), 0);
  std::vector<ProjectedCluster> kept;
  for (size_t c = 0; c < clusters->size(); ++c) {
    if (!(*clusters)[c].members.empty()) {
      remap[c] = kept.size();
      kept.push_back(std::move((*clusters)[c]));
    }
  }
  for (size_t& a : *assignment) a = remap[a];
  *clusters = std::move(kept);
}

}  // namespace

// Not a point-to-point distance (it projects the centered point onto the
// cluster's subspace basis first), so it cannot dedupe onto the shared
// simd::L2Squared entry point the way cluster/kmeans.cc did.
double ProjectedSquaredDistance(const Vector& point,
                                const ProjectedCluster& cluster) {
  COHERE_CHECK_EQ(point.size(), cluster.centroid.size());
  COHERE_CHECK_EQ(cluster.basis.rows(), point.size());
  double sum = 0.0;
  for (size_t c = 0; c < cluster.basis.cols(); ++c) {
    double coord = 0.0;
    for (size_t j = 0; j < point.size(); ++j) {
      coord += (point[j] - cluster.centroid[j]) * cluster.basis.At(j, c);
    }
    sum += coord * coord;
  }
  return sum;
}

size_t NearestProjectedCluster(
    const std::vector<ProjectedCluster>& clusters, const Vector& point) {
  COHERE_CHECK(!clusters.empty());
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < clusters.size(); ++c) {
    const double dist = ProjectedSquaredDistance(point, clusters[c]);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

Result<ProjectedClusteringResult> RunProjectedClustering(
    const Matrix& data, const ProjectedClusteringOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = options.num_clusters;
  const size_t l = options.subspace_dim;
  if (k == 0) return Status::InvalidArgument("num_clusters must be positive");
  if (l == 0 || l > d) {
    return Status::InvalidArgument("subspace_dim must be in [1, d]");
  }
  if (n < k) return Status::InvalidArgument("fewer rows than clusters");

  // ORCLUS-style over-seeding: start with k0 > k localities found by plain
  // k-means, learn their subspaces, then merge down to k by the pair whose
  // union stays tightest in its own least-spread subspace. Over-seeding is
  // what separates populations whose subspaces cross: no single k-means
  // split can, but some of the k0 seeds land inside each population.
  const size_t k0 = std::min(n, std::max(k * 3, k + 2));
  KMeansOptions seed_options;
  seed_options.num_clusters = k0;
  seed_options.max_iterations = 5;
  seed_options.num_restarts = 2;
  seed_options.seed = options.seed;
  Result<KMeansResult> seed = RunKMeans(data, seed_options);
  if (!seed.ok()) return seed.status();

  ProjectedClusteringResult result;
  result.assignment = seed->assignment;
  result.clusters.resize(k0);
  for (size_t c = 0; c < k0; ++c) {
    result.clusters[c].centroid = seed->centroids.Row(c);
    result.clusters[c].basis = Matrix(d, l);
    for (size_t i = 0; i < l; ++i) result.clusters[c].basis.At(i, i) = 1.0;
  }
  for (size_t i = 0; i < n; ++i) {
    result.clusters[result.assignment[i]].members.push_back(i);
  }
  RefitAll(data, l, &result.clusters);

  // Two stabilization passes at the over-seeded granularity.
  for (int pass = 0; pass < 2; ++pass) {
    AssignAll(data, &result.clusters, &result.assignment, &result.energy);
    DropEmpty(&result.clusters, &result.assignment);
    RefitAll(data, l, &result.clusters);
  }

  // Merge phase.
  while (result.clusters.size() > k) {
    size_t best_a = 0;
    size_t best_b = 1;
    double best_energy = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < result.clusters.size(); ++a) {
      for (size_t b = a + 1; b < result.clusters.size(); ++b) {
        std::vector<size_t> merged = result.clusters[a].members;
        merged.insert(merged.end(), result.clusters[b].members.begin(),
                      result.clusters[b].members.end());
        const double energy = MergedEnergy(data, merged, l);
        if (energy < best_energy) {
          best_energy = energy;
          best_a = a;
          best_b = b;
        }
      }
    }
    {
      ProjectedCluster& into = result.clusters[best_a];
      ProjectedCluster& from = result.clusters[best_b];
      for (size_t member : from.members) result.assignment[member] = best_a;
      into.members.insert(into.members.end(), from.members.begin(),
                          from.members.end());
      from.members.clear();
    }
    DropEmpty(&result.clusters, &result.assignment);
    RefitAll(data, l, &result.clusters);
    // One re-assignment pass after each merge keeps boundaries crisp.
    AssignAll(data, &result.clusters, &result.assignment, &result.energy);
    DropEmpty(&result.clusters, &result.assignment);
    RefitAll(data, l, &result.clusters);
  }

  // Final refinement at the target granularity.
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const bool changed =
        AssignAll(data, &result.clusters, &result.assignment, &result.energy);
    // Re-seed any emptied cluster with the globally worst-fitting point so
    // exactly k clusters survive.
    for (size_t c = 0; c < result.clusters.size(); ++c) {
      ProjectedCluster& cluster = result.clusters[c];
      if (!cluster.members.empty()) continue;
      size_t farthest = 0;
      double farthest_dist = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (result.clusters[result.assignment[i]].members.size() <= 1) {
          continue;
        }
        const double dist = ProjectedSquaredDistance(
            data.Row(i), result.clusters[result.assignment[i]]);
        if (dist > farthest_dist) {
          farthest_dist = dist;
          farthest = i;
        }
      }
      std::vector<size_t>& old_members =
          result.clusters[result.assignment[farthest]].members;
      old_members.erase(
          std::find(old_members.begin(), old_members.end(), farthest));
      result.assignment[farthest] = c;
      cluster.members.assign(1, farthest);
      cluster.centroid = data.Row(farthest);
    }
    RefitAll(data, l, &result.clusters);
    if (!changed) break;
  }
  return result;
}

}  // namespace cohere
