#ifndef COHERE_CLUSTER_KMEANS_H_
#define COHERE_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Options for Lloyd's k-means with k-means++ seeding.
struct KMeansOptions {
  size_t num_clusters = 2;
  int max_iterations = 50;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-6;
  /// Independent k-means++ initializations; the lowest-inertia run wins.
  int num_restarts = 3;
  uint64_t seed = 1;
};

/// Result of a k-means run.
struct KMeansResult {
  /// k x d centroid matrix.
  Matrix centroids;
  /// Cluster id per input row.
  std::vector<size_t> assignment;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;
  int iterations = 0;
};

/// Runs k-means++ initialized Lloyd iterations on the rows of `data`.
///
/// Requires at least `num_clusters` rows. Empty clusters are re-seeded with
/// the point farthest from its centroid, so exactly `num_clusters` non-empty
/// clusters are returned.
Result<KMeansResult> RunKMeans(const Matrix& data,
                               const KMeansOptions& options);

/// Index of the nearest centroid (squared Euclidean) to `point`.
size_t NearestCentroid(const Matrix& centroids, const Vector& point);

}  // namespace cohere

#endif  // COHERE_CLUSTER_KMEANS_H_
