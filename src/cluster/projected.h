#ifndef COHERE_CLUSTER_PROJECTED_H_
#define COHERE_CLUSTER_PROJECTED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace cohere {

/// Options for generalized projected clustering.
struct ProjectedClusteringOptions {
  size_t num_clusters = 2;
  /// Per-cluster subspace dimensionality l (the cluster's implicit
  /// dimensionality). Must be <= data dimensionality.
  size_t subspace_dim = 4;
  int max_iterations = 15;
  uint64_t seed = 1;
};

/// One projected cluster: a centroid plus the l-dimensional subspace in
/// which its members are tight.
struct ProjectedCluster {
  /// Centroid in the original attribute space.
  Vector centroid;
  /// d x l orthonormal basis of the cluster's subspace: the *least-spread*
  /// eigenvectors of the member covariance, following ORCLUS — distances
  /// measured inside this basis ignore the directions the cluster sprawls
  /// along and keep the ones it agrees in.
  Matrix basis;
  /// Member row indices into the clustered matrix.
  std::vector<size_t> members;
};

/// Result of RunProjectedClustering.
struct ProjectedClusteringResult {
  std::vector<ProjectedCluster> clusters;
  /// Cluster id per input row.
  std::vector<size_t> assignment;
  /// Mean squared projected distance of points to their cluster centroid
  /// (the ORCLUS energy; lower is tighter).
  double energy = 0.0;
  int iterations = 0;
};

/// Generalized projected clustering in the spirit of ORCLUS (Aggarwal & Yu,
/// SIGMOD 2000 — the paper's reference [2]): k-means++-seeded iterations
/// that alternately (a) assign each point to the cluster whose centroid is
/// nearest *in that cluster's own subspace* and (b) refit each cluster's
/// centroid and least-spread eigenbasis from its members.
///
/// This is the decomposition the paper's Section 3.1 proposes for data whose
/// *global* implicit dimensionality is too high for any single axis system:
/// split the data into subsets that are individually low-dimensional, then
/// run the coherence machinery per subset (see LocalReducedSearchEngine).
Result<ProjectedClusteringResult> RunProjectedClustering(
    const Matrix& data, const ProjectedClusteringOptions& options);

/// Squared distance between `point` and `centroid` measured inside
/// `basis` (d x l): |B^T (point - centroid)|^2.
double ProjectedSquaredDistance(const Vector& point,
                                const ProjectedCluster& cluster);

/// Index of the cluster with the smallest projected distance to `point`.
size_t NearestProjectedCluster(
    const std::vector<ProjectedCluster>& clusters, const Vector& point);

}  // namespace cohere

#endif  // COHERE_CLUSTER_PROJECTED_H_
