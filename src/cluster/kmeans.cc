#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "simd/kernels.h"
#include "stats/rng.h"

namespace cohere {
namespace {

// Shared scalar L2 entry point (src/simd/kernels.h) — the same
// sum-of-squares loop this file used to carry privately, bit for bit.
double SquaredDistance(const double* a, const double* b, size_t d) {
  return simd::L2Squared(a, b, d);
}

// Rows per l2_block kernel call in the scan loops below (stack buffer).
constexpr size_t kScanSpan = 256;

// k-means++ seeding: first centroid uniform, each next one with probability
// proportional to the squared distance from the nearest chosen centroid.
Matrix SeedCentroids(const Matrix& data, size_t k, Rng* rng) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix centroids(k, d);

  std::vector<double> nearest_sq(n, std::numeric_limits<double>::infinity());
  size_t first = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(n - 1)));
  std::copy(data.RowPtr(first), data.RowPtr(first) + d, centroids.RowPtr(0));

  const auto& kernels = simd::ActiveKernels();
  double dist[kScanSpan];
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t base = 0; base < n; base += kScanSpan) {
      const size_t span = std::min(kScanSpan, n - base);
      kernels.l2_block(centroids.RowPtr(c - 1), data.RowPtr(base), span, d,
                       dist);
      for (size_t r = 0; r < span; ++r) {
        const size_t i = base + r;
        nearest_sq[i] = std::min(nearest_sq[i], dist[r]);
        total += nearest_sq[i];
      }
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng->Uniform(0.0, total);
      for (size_t i = 0; i < n; ++i) {
        target -= nearest_sq[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n - 1)));
    }
    std::copy(data.RowPtr(chosen), data.RowPtr(chosen) + d,
              centroids.RowPtr(c));
  }
  return centroids;
}

}  // namespace

size_t NearestCentroid(const Matrix& centroids, const Vector& point) {
  COHERE_CHECK_EQ(centroids.cols(), point.size());
  COHERE_CHECK_GT(centroids.rows(), 0u);
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    const double dist =
        SquaredDistance(centroids.RowPtr(c), point.data(), point.size());
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

namespace {

Result<KMeansResult> RunKMeansOnce(const Matrix& data,
                                   const KMeansOptions& options,
                                   uint64_t seed) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = options.num_clusters;
  if (k == 0) return Status::InvalidArgument("num_clusters must be positive");
  if (n < k) {
    return Status::InvalidArgument("fewer rows than clusters");
  }

  Rng rng(seed);
  KMeansResult result;
  result.centroids = SeedCentroids(data, k, &rng);
  result.assignment.assign(n, 0);

  double previous_inertia = std::numeric_limits<double>::infinity();
  const auto& kernels = simd::ActiveKernels();
  std::vector<double> dist(k);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step: all k centroid distances per point in one kernel
    // block call (the centroid matrix is contiguous row-major), then a
    // first-minimum argmin — the same `<` tie-breaking the per-centroid
    // scalar loop used.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      kernels.l2_block(data.RowPtr(i), result.centroids.RowPtr(0), k, d,
                       dist.data());
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        if (dist[c] < best_dist) {
          best_dist = dist[c];
          best = c;
        }
      }
      result.assignment[i] = best;
      inertia += best_dist;
    }
    result.inertia = inertia;

    // Update step.
    Matrix sums(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = result.assignment[i];
      ++counts[c];
      double* sum_row = sums.RowPtr(c);
      const double* row = data.RowPtr(i);
      for (size_t j = 0; j < d; ++j) sum_row[j] += row[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its current
        // centroid.
        size_t farthest = 0;
        double farthest_dist = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double dist = SquaredDistance(
              data.RowPtr(i),
              result.centroids.RowPtr(result.assignment[i]), d);
          if (dist > farthest_dist) {
            farthest_dist = dist;
            farthest = i;
          }
        }
        std::copy(data.RowPtr(farthest), data.RowPtr(farthest) + d,
                  result.centroids.RowPtr(c));
        result.assignment[farthest] = c;
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* centroid = result.centroids.RowPtr(c);
      const double* sum_row = sums.RowPtr(c);
      for (size_t j = 0; j < d; ++j) centroid[j] = sum_row[j] * inv;
    }

    if (previous_inertia - inertia <=
        options.tolerance * std::max(previous_inertia, 1e-300)) {
      break;
    }
    previous_inertia = inertia;
  }
  return result;
}

}  // namespace

Result<KMeansResult> RunKMeans(const Matrix& data,
                               const KMeansOptions& options) {
  const int restarts = std::max(options.num_restarts, 1);
  Result<KMeansResult> best = Status::Internal("no k-means run executed");
  for (int r = 0; r < restarts; ++r) {
    Result<KMeansResult> run =
        RunKMeansOnce(data, options, options.seed + 0x9e3779b9ull * r);
    if (!run.ok()) return run;
    if (!best.ok() || run->inertia < best->inertia) best = std::move(run);
  }
  return best;
}

}  // namespace cohere
